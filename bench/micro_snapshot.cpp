// Micro-benchmark: cost and payoff of engine snapshots (DESIGN.md §11,
// EXPERIMENTS.md E18). Three questions per grid side:
//   1. How big is a snapshot at steady state (bytes, bytes/cell)?
//   2. What do save() and restore() cost (µs — is per-round periodic
//      checkpointing viable)?
//   3. What does a warm start save end-to-end: reach round W+R cold
//      (run everything) vs warm (restore the round-W snapshot, run R)?
//
// Correctness rides along: every restore is digest-checked against the
// engine it was saved from, and the warm continuation must land on the
// same digest as the cold run — any mismatch aborts nonzero, so this
// bench doubles as a round-trip conformance check at bench scale.
// scripts/plot_figures.py consumes the CSV block.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/choose.hpp"
#include "core/system.hpp"
#include "failure/failure_model.hpp"
#include "sim/experiment.hpp"
#include "snapshot/snapshot.hpp"
#include "util/cli.hpp"

namespace {

using namespace cellflow;

/// Saturated workload (same shape as micro_parallel_scaling): sources
/// along the west edge, target mid-east, plus fail/recover churn so the
/// snapshot carries a busy failure stream.
SystemConfig snapshot_config(int side) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(0.2, 0.05, 0.2);
  cfg.target = CellId{side - 1, side / 2};
  cfg.sources.clear();
  for (int j = 0; j < side; ++j) cfg.sources.push_back(CellId{0, j});
  return cfg;
}

struct Engine {
  std::unique_ptr<System> sys;
  std::unique_ptr<FailureModel> failures;
};

Engine build(int side) {
  Engine e;
  e.sys = std::make_unique<System>(snapshot_config(side),
                                   make_choose_policy("random", 1234));
  e.failures = std::make_unique<RandomFailRecover>(0.01, 0.1, 77);
  return e;
}

void run(Engine& e, std::uint64_t rounds) {
  for (std::uint64_t k = 0; k < rounds; ++k) {
    e.failures->apply(*e.sys);
    e.sys->update();
  }
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  int side = 0;
  std::size_t bytes = 0;
  double save_us = 0.0;
  double restore_us = 0.0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto warmup =
      cli.get_uint("warmup", 200, "rounds before the snapshot boundary W");
  const auto rounds =
      cli.get_uint("rounds", 200, "rounds after the boundary (R)");
  const auto reps =
      cli.get_uint("reps", 50, "save/restore repetitions per side");
  const auto max_side = static_cast<int>(
      cli.get_uint("max-side", 50, "largest grid side to measure"));
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("micro_snapshot");

  cellflow::bench::banner(
      "Micro: snapshot save/restore cost and warm-start payoff",
      "versioned engine snapshots (DESIGN.md §11, EXPERIMENTS.md E18)");

  bool ok = true;
  std::vector<Row> rows;
  for (const int side : {10, 20, 50}) {
    if (side > max_side) continue;
    Row row;
    row.side = side;

    // Steady-state engine at the snapshot boundary W.
    Engine origin = build(side);
    run(origin, warmup);
    recorder.note_rounds(warmup);
    const std::uint64_t boundary_digest = snapshot::state_digest(*origin.sys);

    // Save cost + size.
    std::vector<std::uint8_t> snap;
    {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::uint64_t k = 0; k < reps; ++k) {
        snap = snapshot::save(*origin.sys, origin.failures.get());
      }
      row.save_us = 1000.0 * ms_since(t0) / static_cast<double>(reps);
    }
    row.bytes = snap.size();

    // Restore cost, digest-checked every repetition.
    Engine target = build(side);
    {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::uint64_t k = 0; k < reps; ++k) {
        snapshot::restore(*target.sys, snap, target.failures.get());
      }
      row.restore_us = 1000.0 * ms_since(t0) / static_cast<double>(reps);
    }
    if (snapshot::state_digest(*target.sys) != boundary_digest) {
      std::cerr << "DIGEST MISMATCH after restore: side=" << side << '\n';
      ok = false;
    }

    // Warm-start payoff: cold runs W+R from scratch; warm restores the
    // round-W snapshot and runs R. Both must land on the same digest.
    std::uint64_t cold_digest = 0;
    {
      Engine cold = build(side);
      const auto t0 = std::chrono::steady_clock::now();
      run(cold, warmup + rounds);
      row.cold_ms = ms_since(t0);
      cold_digest = snapshot::state_digest(*cold.sys);
      recorder.note_rounds(warmup + rounds);
    }
    {
      Engine warm = build(side);
      const auto t0 = std::chrono::steady_clock::now();
      snapshot::restore(*warm.sys, snap, warm.failures.get());
      run(warm, rounds);
      row.warm_ms = ms_since(t0);
      recorder.note_rounds(rounds);
      if (snapshot::state_digest(*warm.sys) != cold_digest) {
        std::cerr << "WARM-START DIVERGENCE: side=" << side
                  << " — restored continuation is not the cold run\n";
        ok = false;
      }
    }
    rows.push_back(row);
  }

  // Warm-start through the Experiment layer on the Figure-7 workload
  // (EXPERIMENTS.md E18): cold runs W+R rounds from scratch; warm runs a
  // W-round preamble once (snapshotted via WorkloadSpec.snapshot_out),
  // then restores and runs R. Equivalence is final-SNAPSHOT byte
  // equality — the strongest available check, covering every counter and
  // rng stream, not just the digest.
  double fig_cold_ms = 0.0;
  double fig_warm_ms = 0.0;
  std::size_t fig_bytes = 0;
  {
    WorkloadSpec base = fig7_base(0.3, 0.2);
    base.choose_policy = "random";  // rng-bearing policy rides the snapshot

    std::vector<std::uint8_t> cold_snap, mid_snap, warm_snap;
    WorkloadSpec cold = base;
    cold.rounds = warmup + rounds;
    cold.snapshot_out = &cold_snap;
    {
      const auto t0 = std::chrono::steady_clock::now();
      const RunResult rc = run_workload(cold, 1);
      fig_cold_ms = ms_since(t0);
      recorder.note_rounds(cold.rounds);
      if (!rc.safety_clean) ok = false;
    }
    WorkloadSpec pre = base;
    pre.rounds = warmup;
    pre.snapshot_out = &mid_snap;
    (void)run_workload(pre, 1);
    recorder.note_rounds(pre.rounds);
    fig_bytes = mid_snap.size();
    WorkloadSpec warm = base;
    warm.rounds = rounds;
    warm.restore_from = &mid_snap;
    warm.snapshot_out = &warm_snap;
    {
      const auto t0 = std::chrono::steady_clock::now();
      const RunResult rw = run_workload(warm, 1);
      fig_warm_ms = ms_since(t0);
      recorder.note_rounds(warm.rounds);
      if (!rw.safety_clean) ok = false;
    }
    if (warm_snap != cold_snap) {
      std::cerr << "FIG7 WARM-START DIVERGENCE: resumed final snapshot "
                   "differs from the uninterrupted run's\n";
      ok = false;
    }
  }

  TextTable table;
  table.set_header({"side", "bytes", "bytes/cell", "save us", "restore us",
                    "cold ms", "warm ms", "saved %"});
  for (const Row& r : rows) {
    const double cells = static_cast<double>(r.side) * r.side;
    const double saved =
        r.cold_ms > 0.0 ? 100.0 * (1.0 - r.warm_ms / r.cold_ms) : 0.0;
    table.add_numeric_row(std::to_string(r.side),
                          {static_cast<double>(r.bytes),
                           static_cast<double>(r.bytes) / cells, r.save_us,
                           r.restore_us, r.cold_ms, r.warm_ms, saved});
  }
  std::cout << table.to_string() << '\n';

  const double fig_saved =
      fig_cold_ms > 0.0 ? 100.0 * (1.0 - fig_warm_ms / fig_cold_ms) : 0.0;
  std::cout << "fig7 warm-start (8x8, rs=0.3, v=0.2, Experiment layer): cold "
            << format_sig(fig_cold_ms, 4) << " ms, warm "
            << format_sig(fig_warm_ms, 4) << " ms, saved "
            << format_sig(fig_saved, 4) << "% (snapshot "
            << fig_bytes << " bytes, final snapshots byte-equal)\n\n";

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"workload", "side", "snapshot_bytes", "save_us", "restore_us",
              "cold_ms", "warm_ms", "warm_saved_pct"});
  for (const Row& r : rows) {
    const double saved =
        r.cold_ms > 0.0 ? 100.0 * (1.0 - r.warm_ms / r.cold_ms) : 0.0;
    csv.field("sweep")
        .field(static_cast<std::int64_t>(r.side))
        .field(static_cast<std::int64_t>(r.bytes))
        .field(r.save_us)
        .field(r.restore_us)
        .field(r.cold_ms)
        .field(r.warm_ms)
        .field(saved);
    csv.end_row();
  }
  csv.field("fig7")
      .field(std::int64_t{8})
      .field(static_cast<std::int64_t>(fig_bytes))
      .field(0.0)
      .field(0.0)
      .field(fig_cold_ms)
      .field(fig_warm_ms)
      .field(fig_saved);
  csv.end_row();

  std::cout << (ok ? "\nround-trip: all restores digest-identical\n"
                   : "\nround-trip: DIGEST MISMATCH (bug)\n");
  return ok ? 0 : 1;
}
