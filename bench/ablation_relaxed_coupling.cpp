// Extension bench E11: coupled (paper Figure 6) vs relaxed-coupling
// (§V future work, MovementRule::kCompacting) movement, over the
// Figure-7 rs sweep. Compaction lets queues close up during blocked
// rounds, so cells hold more entities and the pipeline streams denser
// traffic — bigger wins at small rs (more entities fit per cell). Safety
// oracles run every round on both variants.
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "core/choose.hpp"
#include "failure/failure_model.hpp"
#include "sim/experiment.hpp"
#include "sim/observers.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace cellflow;

struct Outcome {
  double throughput = 0.0;
  double population = 0.0;
};

Outcome run(MovementRule rule, double rs, std::uint64_t rounds,
            std::uint64_t seed) {
  SystemConfig cfg;
  cfg.side = 8;
  cfg.params = Params(0.25, rs, 0.1);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 7};
  cfg.movement_rule = rule;
  System sys(cfg, make_choose_policy("random", seed));
  NoFailures none;
  Simulator sim(sys, none);
  ThroughputMeter meter;
  SafetyMonitor safety;
  OccupancyTracker occupancy;
  sim.add_observer(meter);
  sim.add_observer(safety);
  sim.add_observer(occupancy);
  sim.run(rounds);
  if (!safety.clean()) {
    std::cerr << "SAFETY VIOLATION (" << (rule == MovementRule::kCoupled
                                              ? "coupled"
                                              : "compacting")
              << "): " << safety.report() << '\n';
    std::exit(1);
  }
  return Outcome{meter.throughput(), occupancy.population().mean()};
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 2500, "K rounds per run");
  const auto seed = cli.get_uint("seed", 1, "rng seed");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("ablation_relaxed_coupling");

  std::cout << "=== Extension: relaxed coupling vs coupled movement (SV) ===\n"
            << "Figure-7 geometry, v=0.1, l=0.25, K=" << rounds << "\n\n";

  TextTable table;
  table.set_header({"rs", "coupled thr", "relaxed thr", "speedup",
                    "coupled pop", "relaxed pop"});
  std::vector<std::array<double, 6>> rows;
  for (const double rs : {0.05, 0.15, 0.3, 0.5, 0.7}) {
    const Outcome c = run(MovementRule::kCoupled, rs, rounds, seed);
    const Outcome r = run(MovementRule::kCompacting, rs, rounds, seed);
    recorder.note_rounds(2 * rounds);
    const double speedup = c.throughput > 0 ? r.throughput / c.throughput : 0;
    table.add_numeric_row(format_sig(rs, 3),
                          {c.throughput, r.throughput, speedup, c.population,
                           r.population});
    rows.push_back(
        {rs, c.throughput, r.throughput, speedup, c.population, r.population});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"rs", "coupled", "relaxed", "speedup", "coupled_pop",
              "relaxed_pop"});
  for (const auto& r : rows)
    csv.row({r[0], r[1], r[2], r[3], r[4], r[5]});

  std::cout << "\nexpected shape: relaxed >= coupled everywhere; the gap\n"
               "(and the in-flight population) widens at small rs where\n"
               "compaction can pack more entities per cell.\n";
  return 0;
}
