// Ablation E15: throughput and restabilization under message loss
// (DESIGN.md §8). The MessageSystem runs over a FaultyNetwork that drops
// every message i.i.d. with probability p for the first half of the run,
// then ceases (NetFaultSpec::last_fault_round) — Lemma 6's "failures
// cease" transposed to the transport. For each drop rate we report:
//
//   throughput      arrivals/round over the whole run (the fault era
//                   drags it down; the data plane guarantees nothing is
//                   ever lost, only delayed)
//   restab(rounds)  rounds after the last fault until dist/next agree
//                   with the BFS reference and STAY agreed — measured
//                   restabilization time vs the 4·N² Lemma-6 bound
//
// Every round is audited against the §III-A safety oracles and the
// entity-conservation ledger (msg_audit::check_all); any violation
// aborts nonzero, so this bench doubles as a long-horizon fault fuzz.
//
// Expected shapes: throughput decreases in p (roughly like the square of
// the delivery rate — a hand-off needs a grant AND a transfer AND an ack
// round-trip); restabilization stays far below the 4·N² bound and grows
// only mildly with p (the last dropped DistAnnounce is what matters, not
// the drop history).
#include <array>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "grid/mask.hpp"
#include "msg/msg_audit.hpp"
#include "msg/msg_system.hpp"
#include "net/faulty_network.hpp"
#include "util/cli.hpp"

namespace {

using namespace cellflow;

struct Outcome {
  double throughput = 0.0;
  double restab_rounds = 0.0;
  std::uint64_t dropped = 0;
  std::uint64_t deferred = 0;
};

constexpr int kSide = 8;

// Returns true iff every cell's (dist, next) matches the all-alive BFS
// reference (the ablation never crashes cells; only messages fault).
bool routing_agrees(const MessageSystem& msg, const std::vector<Dist>& rho) {
  const Grid& grid = msg.grid();
  for (const CellId id : grid.all_cells()) {
    const Dist expect = rho[grid.index_of(id)];
    if (msg.cell(id).dist != expect) return false;
    if (id != msg.target()) {
      const OptCellId next = msg.cell(id).next;
      if (!next.has_value()) return false;
      if (rho[grid.index_of(*next)].plus_one() != expect) return false;
    }
  }
  return true;
}

Outcome run(double drop, std::uint64_t rounds, std::uint64_t seed) {
  MsgSystemConfig cfg;
  cfg.side = kSide;
  cfg.params = Params(0.2, 0.05, 0.2);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, kSide - 1};

  const std::uint64_t fault_era = rounds / 2;
  NetFaultSpec spec;
  spec.drop_prob = drop;
  spec.last_fault_round = fault_era;
  MessageSystem msg{cfg, std::make_unique<FaultyNetwork>(spec, seed)};

  const Grid grid(cfg.side);
  const auto rho = path_distances(grid, CellMask::all(grid), cfg.target);

  // Last post-quiescence round at which routing still disagreed with the
  // reference; restabilization = that round − the fault-cease round.
  std::uint64_t last_disagree = fault_era;
  for (std::uint64_t k = 0; k < rounds; ++k) {
    msg.update();
    const auto violations = msg_audit::check_all(msg);
    if (!violations.empty()) {
      std::cerr << "SAFETY VIOLATION (drop=" << drop << " seed=" << seed
                << " round=" << k << "): " << violations.front().predicate
                << " at " << to_string(violations.front().cell) << " — "
                << violations.front().detail << '\n';
      std::exit(1);
    }
    if (k > fault_era && msg.network().quiescent() &&
        !routing_agrees(msg, rho)) {
      last_disagree = k;
    }
  }

  Outcome o;
  o.throughput =
      static_cast<double>(msg.total_arrivals()) / static_cast<double>(rounds);
  o.restab_rounds = static_cast<double>(last_disagree - fault_era);
  o.dropped = msg.network().fault_count(NetFault::kDropped);
  o.deferred = msg.deferred_acceptances();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 4000, "K rounds per run");
  const auto n_seeds = cli.get_uint("seeds", 3, "seeds averaged per point");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("ablation_message_loss");

  cellflow::bench::banner(
      "Ablation: throughput and restabilization vs message drop rate",
      "DESIGN.md SS8 / Lemma 6 over a lossy transport (8x8, l=0.2, "
      "rs=0.05, v=0.2)");
  std::cout << "drops cease at K/2 = " << rounds / 2
            << "; restab = rounds after that until dist/next match the\n"
               "BFS reference and stay there (Lemma-6 bound: 4N^2 = "
            << 4 * kSide * kSide << ")\n\n";

  const std::vector<double> drop_rates = {0.0, 0.05, 0.1, 0.2, 0.4};
  const auto seeds = default_seeds(n_seeds);

  TextTable table;
  table.set_header({"drop", "throughput", "restab(rounds)", "dropped msgs",
                    "deferred accepts"});
  std::vector<std::array<double, 5>> rows;

  for (const double drop : drop_rates) {
    RunningStats thr;
    RunningStats restab;
    double dropped = 0.0;
    double deferred = 0.0;
    for (const std::uint64_t seed : seeds) {
      const Outcome o = run(drop, rounds, seed);
      recorder.note_rounds(rounds);
      thr.add(o.throughput);
      restab.add(o.restab_rounds);
      dropped += static_cast<double>(o.dropped);
      deferred += static_cast<double>(o.deferred);
    }
    const auto n = static_cast<double>(seeds.size());
    table.add_numeric_row(format_sig(drop, 3),
                          {thr.mean(), restab.mean(), dropped / n,
                           deferred / n});
    rows.push_back({drop, thr.mean(), restab.mean(), dropped / n,
                    deferred / n});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"drop", "throughput", "restab_rounds", "dropped", "deferred"});
  for (const auto& r : rows) csv.row({r[0], r[1], r[2], r[3], r[4]});

  std::cout << "\nexpected shape: throughput falls as drop grows (no\n"
               "entity is ever lost — the data plane retries, so loss\n"
               "costs rounds, not entities); restab stays far below the\n"
               "4N^2 bound at every drop rate.\n";
  return 0;
}
