// Micro-benchmark E17: allocation churn and throughput of the round hot
// path (DESIGN.md §10). Links the operator-new interposer
// (src/obs/alloc_interposer.cpp), so every heap allocation in the
// process is counted; the per-engine measurement window then reports
// rounds/sec, allocations/round, and bytes/round on the saturated dense
// workload — the shape where the pre-§10 engine allocated the most
// (every cell computes NEPrev, every strip is contested, entities cross
// every round).
//
// Expected steady state: 0 allocs/round on every engine — the scratch
// arenas, inline NeighborSets, and in-place Move leave nothing for the
// allocator to do once the warm-up has grown every buffer to its
// high-water mark. The digest check doubles as an end-to-end
// equivalence pin across serial / parallel / active-set, mirroring
// micro_active_set.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/source.hpp"
#include "core/system.hpp"
#include "obs/alloc_stats.hpp"
#include "util/cli.hpp"

namespace {

using namespace cellflow;

/// Saturated closed system (micro_active_set's dense shape): every cell
/// bar the consuming target holds one centered entity, no sources.
SystemConfig dense_config(int side) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(0.2, 0.05, 0.2);
  cfg.target = CellId{side - 1, side / 2};
  cfg.sources = {};
  return cfg;
}

void seed_everywhere(System& sys) {
  for (const CellId id : sys.grid().all_cells()) {
    if (id == sys.target()) continue;
    sys.seed_entity(id, Vec2{static_cast<double>(id.i) + 0.5,
                             static_cast<double>(id.j) + 0.5});
  }
}

/// FNV-1a over every protocol variable (micro_active_set's digest).
class StateDigest {
 public:
  void mix(std::uint64_t v) noexcept {
    for (int b = 0; b < 8; ++b) {
      hash_ ^= (v >> (8 * b)) & 0xffu;
      hash_ *= 0x100000001b3ull;
    }
  }
  void mix_double(double d) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    mix(bits);
  }
  void mix_opt(const OptCellId& id) noexcept {
    mix(id.has_value() ? (static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(id->i))
                              << 32) |
                             static_cast<std::uint32_t>(id->j)
                       : ~0ull);
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::uint64_t digest(const System& sys) {
  StateDigest d;
  d.mix(sys.round());
  d.mix(sys.total_arrivals());
  d.mix(sys.total_injected());
  for (const CellState& c : sys.cells()) {
    d.mix(c.failed ? 1 : 0);
    d.mix(c.dist.is_finite() ? c.dist.hops() : ~0ull);
    d.mix_opt(c.next);
    d.mix_opt(c.token);
    d.mix_opt(c.signal);
    d.mix(c.members.size());
    for (const Entity& e : c.members) {
      d.mix(e.id.value);
      d.mix_double(e.center.x);
      d.mix_double(e.center.y);
    }
  }
  return d.value();
}

struct Engine {
  const char* label;
  RoundScheduler scheduler;
  ParallelPolicy policy;
};

struct Measurement {
  double rounds_per_sec = 0.0;
  double allocs_per_round = 0.0;
  double bytes_per_round = 0.0;
  std::uint64_t state_digest = 0;
};

Measurement measure(const SystemConfig& cfg, const Engine& eng,
                    std::uint64_t warmup, std::uint64_t rounds) {
  System sys(cfg, nullptr, std::make_unique<NullSource>());
  seed_everywhere(sys);
  sys.set_round_scheduler(eng.scheduler);
  sys.set_parallel_policy(eng.policy);
  // Warm-up grows every scratch buffer to its high-water mark; only the
  // window after it is charged to the engine.
  for (std::uint64_t k = 0; k < warmup; ++k) sys.update();
  const obs::AllocWindow window;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t k = 0; k < rounds; ++k) sys.update();
  const auto t1 = std::chrono::steady_clock::now();
  const obs::AllocTotals churn = window.delta();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  Measurement m;
  m.rounds_per_sec = secs > 0.0 ? static_cast<double>(rounds) / secs : 0.0;
  m.allocs_per_round =
      static_cast<double>(churn.allocs) / static_cast<double>(rounds);
  m.bytes_per_round =
      static_cast<double>(churn.bytes) / static_cast<double>(rounds);
  m.state_digest = digest(sys);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 300, "timed rounds per engine");
  const auto warmup =
      cli.get_uint("warmup", 60, "untimed rounds to warm the scratch arenas");
  const auto max_side = static_cast<int>(
      cli.get_uint("max-side", 100, "largest grid side to measure"));
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();
  cellflow::bench::BenchRecorder recorder("micro_alloc_churn");

  bench::banner("Micro: round hot-path allocation churn",
                "DESIGN.md §10 zero-allocation steady state; dense load");
  if (!obs::alloc_interposer_linked()) {
    std::cerr << "alloc interposer NOT linked — counts would read 0 "
                 "vacuously (build system bug)\n";
    return 1;
  }
  std::cout << "allocs/round and bytes/round are process-global deltas over\n"
               "the timed window (steady state target: 0 on every engine)\n\n";

  const std::vector<Engine> engines = {
      {"serial", RoundScheduler::kExhaustive, ParallelPolicy::serial()},
      {"parallel-4", RoundScheduler::kExhaustive, ParallelPolicy::parallel(4)},
      {"active-set", RoundScheduler::kActiveSet, ParallelPolicy::serial()},
  };

  TextTable table;
  table.set_header(
      {"workload / engine", "rounds/s", "allocs/round", "bytes/round"});

  struct Row {
    std::string workload;
    int side;
    const char* engine;
    Measurement m;
  };
  std::vector<Row> results;
  bool digests_agree = true;
  bool alloc_free = true;

  for (const int side : {20, 50, 100}) {
    if (side > max_side) continue;
    const SystemConfig cfg = dense_config(side);
    const std::string workload = "dense-" + std::to_string(side);
    std::uint64_t ref_digest = 0;
    for (const Engine& eng : engines) {
      const Measurement m = measure(cfg, eng, warmup, rounds);
      recorder.note_rounds(warmup + rounds);
      if (&eng == &engines.front()) {
        ref_digest = m.state_digest;
      } else if (m.state_digest != ref_digest) {
        digests_agree = false;
        std::cerr << "DIGEST MISMATCH: " << workload << " engine="
                  << eng.label << " diverged from serial\n";
      }
      if (m.allocs_per_round > 0.0) alloc_free = false;
      table.add_numeric_row(workload + "  " + eng.label,
                            {m.rounds_per_sec, m.allocs_per_round,
                             m.bytes_per_round});
      results.push_back(Row{workload, side, eng.label, m});
    }
  }
  std::cout << table.to_string() << '\n';

  std::cout << "CSV:\n";
  CsvWriter csv(std::cout);
  csv.header({"workload", "side", "engine", "rounds_per_sec", "allocs_per_round",
              "bytes_per_round"});
  for (const Row& r : results) {
    csv.field(r.workload)
        .field(static_cast<std::uint64_t>(r.side))
        .field(r.engine)
        .field(r.m.rounds_per_sec)
        .field(r.m.allocs_per_round)
        .field(r.m.bytes_per_round);
    csv.end_row();
  }

  std::cout << (alloc_free ? "\nsteady state: allocation-free on every engine\n"
                           : "\nsteady state: ALLOCATING (regression — see "
                             "tests/test_alloc_churn.cpp)\n");
  std::cout << (digests_agree ? "equivalence: all engine digests agree\n"
                              : "equivalence: DIGEST MISMATCH (bug)\n");
  return digests_agree ? 0 : 1;
}
