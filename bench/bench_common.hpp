// Shared scaffolding for the figure-reproduction benches: consistent
// banner, seed handling, and table+CSV emission.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace cellflow::bench {

/// Registers the shared --threads flag and resolves it to a round-engine
/// policy: 0 (the default) defers to $CELLFLOW_THREADS (serial when
/// unset), N >= 1 forces kParallel{N}. Assign the result to
/// WorkloadSpec::parallel.
inline ParallelPolicy parallel_from_cli(CliArgs& cli) {
  const auto threads = cli.get_uint(
      "threads", 0,
      "round-engine worker threads (0: $CELLFLOW_THREADS or serial)");
  return threads == 0 ? parallel_policy_from_env()
                      : ParallelPolicy::parallel(static_cast<int>(threads));
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "=== " << title << " ===\n"
            << "reproduces: " << paper_ref << '\n'
            << "(absolute values depend on the realization of the paper's\n"
            << " nondeterministic choices; compare shapes, not numbers)\n\n";
}

/// Mean throughput across seeds for a spec (asserting safety internally).
inline double mean_throughput(const WorkloadSpec& spec,
                              const std::vector<std::uint64_t>& seeds) {
  return run_workload_seeds(spec, seeds).mean();
}

}  // namespace cellflow::bench
