// Shared scaffolding for the figure-reproduction benches: consistent
// banner, seed handling, and table+CSV emission.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace cellflow::bench {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "=== " << title << " ===\n"
            << "reproduces: " << paper_ref << '\n'
            << "(absolute values depend on the realization of the paper's\n"
            << " nondeterministic choices; compare shapes, not numbers)\n\n";
}

/// Mean throughput across seeds for a spec (asserting safety internally).
inline double mean_throughput(const WorkloadSpec& spec,
                              const std::vector<std::uint64_t>& seeds) {
  return run_workload_seeds(spec, seeds).mean();
}

}  // namespace cellflow::bench
