// Shared scaffolding for the figure-reproduction benches: consistent
// banner, seed handling, table+CSV emission, and the machine-readable
// BENCH_<name>.json sidecar every bench writes for cross-PR tracking.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <span>
#include <sstream>
#include <streambuf>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace cellflow::bench {

/// Declared at the top of a bench's main(), after CLI parsing:
///
///   bench::BenchRecorder rec("fig9_throughput_vs_failures");
///   rec.note_rounds(total_protocol_rounds);  // optional, enables rounds/sec
///
/// The recorder tees std::cout (the console output is unchanged), times
/// the run on the steady clock, and on destruction writes
/// BENCH_<name>.json: wall time, rounds/sec when note_rounds() was
/// called, and the bench's `CSV:` block re-parsed into a {header, rows}
/// series (scripts and CI diff the JSON; humans keep reading the table).
///
/// Sidecar placement: the constructor's `out_dir` argument wins; when
/// empty, $CELLFLOW_BENCH_DIR; when that is unset too, the working
/// directory (the historical behavior). scripts/run_bench.sh points the
/// whole suite at results/ this way. The directory must already exist —
/// emission is best-effort, and a bench never fails because the sidecar
/// could not be written.
///
/// Sidecars are schema v2 (obs/sidecar.hpp): alongside the v1 fields
/// they stamp "sidecar_version":2, a "provenance" object (git SHA from
/// $CELLFLOW_GIT_SHA — run_bench.sh exports it — build type + compiler
/// baked in at compile time, $CELLFLOW_THREADS, hardware threads,
/// repetitions), and a "dispersion" map filled by note_samples() so the
/// regression gate (tools/cellflow_bench_diff) can widen its thresholds
/// on metrics this machine measures noisily.
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string name, std::string out_dir = {})
      : name_(std::move(name)),
        out_dir_(std::move(out_dir)),
        tee_(std::cout.rdbuf()),
        start_(std::chrono::steady_clock::now()) {
    if (out_dir_.empty()) {
      if (const char* env = std::getenv("CELLFLOW_BENCH_DIR"))
        out_dir_ = env;
    }
    std::cout.rdbuf(&tee_);
  }
  BenchRecorder(const BenchRecorder&) = delete;
  BenchRecorder& operator=(const BenchRecorder&) = delete;

  /// Accumulates protocol rounds executed (across seeds/configurations)
  /// so the sidecar can report an aggregate rounds/sec figure.
  void note_rounds(std::uint64_t rounds) noexcept { rounds_ += rounds; }

  /// Number of measurement repetitions behind each reported value
  /// (provenance only; dispersion carries the actual spread).
  void set_repetitions(int reps) noexcept {
    if (reps >= 1) repetitions_ = reps;
  }

  /// Records the per-repetition samples behind one reported metric; the
  /// sidecar's "dispersion" map gets {n, mean, rel = (max-min)/mean} so
  /// bench_diff can scale its regression threshold to observed noise.
  /// Call once per metric with all samples (later calls overwrite).
  void note_samples(std::string_view metric, std::span<const double> values) {
    if (values.empty()) return;
    double sum = 0.0;
    double lo = values[0];
    double hi = values[0];
    for (const double v : values) {
      sum += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double mean = sum / static_cast<double>(values.size());
    Samples s;
    s.n = values.size();
    s.mean = mean;
    s.rel = mean != 0.0 ? (hi - lo) / std::abs(mean) : 0.0;
    dispersion_[std::string(metric)] = s;
  }

  /// Records one memory figure (bytes) for the sidecar's "memory" map —
  /// e.g. note_memory("vm_hwm_bytes", obs::process_memory().vm_hwm_bytes)
  /// or the store's peak resident bytes. *_bytes metrics gate
  /// lower-better in cellflow_bench_diff. Zero values are skipped ("not
  /// measured" — a 0 baseline would turn any later real figure into a
  /// vacuous pass and mask the platform gap).
  void note_memory(std::string_view metric, std::uint64_t bytes) {
    if (bytes > 0) memory_[std::string(metric)] = bytes;
  }

  ~BenchRecorder() {
    std::cout.flush();
    std::cout.rdbuf(tee_.inner());
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const std::string prefix =
        out_dir_.empty() ? std::string{} : out_dir_ + "/";
    std::ofstream out(prefix + "BENCH_" + name_ + ".json");
    if (!out) return;
    out << "{\"bench\":\"" << obs::json_escape(name_)
        << "\",\"elapsed_seconds\":" << obs::format_double(elapsed);
    if (rounds_ > 0) {
      out << ",\"rounds\":" << rounds_ << ",\"rounds_per_sec\":"
          << obs::format_double(elapsed > 0.0
                                    ? static_cast<double>(rounds_) / elapsed
                                    : 0.0);
    }
    out << ",\"sidecar_version\":2,\"provenance\":{\"git_sha\":\""
        << obs::json_escape(env_or("CELLFLOW_GIT_SHA", "unknown"))
        << "\",\"build_type\":\"" << obs::json_escape(build_type())
        << "\",\"compiler\":\"" << obs::json_escape(compiler())
        << "\",\"threads\":" << env_int("CELLFLOW_THREADS")
        << ",\"hardware_threads\":"
        << std::max(1u, std::thread::hardware_concurrency())
        << ",\"repetitions\":" << repetitions_ << "}";
    // obs::csv_block_as_json emits numeric fields as bare JSON numbers
    // under the strict RFC-8259 grammar (locale-independent; the old
    // strtod full-match quoted every fractional field under a
    // comma-decimal locale, leaving the sidecars with no numeric
    // series). Pinned by tests/test_export.cpp's golden sidecar test.
    out << ",\"series\":" << obs::csv_block_as_json(tee_.text());
    if (!dispersion_.empty()) {
      out << ",\"dispersion\":{";
      bool first = true;
      for (const auto& [metric, s] : dispersion_) {
        if (!first) out << ',';
        first = false;
        out << '"' << obs::json_escape(metric) << "\":{\"n\":" << s.n
            << ",\"mean\":" << obs::format_double(s.mean)
            << ",\"rel\":" << obs::format_double(s.rel) << '}';
      }
      out << '}';
    }
    if (!memory_.empty()) {
      out << ",\"memory\":{";
      bool first = true;
      for (const auto& [metric, bytes] : memory_) {
        if (!first) out << ',';
        first = false;
        out << '"' << obs::json_escape(metric) << "\":" << bytes;
      }
      out << '}';
    }
    out << "}\n";
  }

 private:
  /// Forwards every byte to the real std::cout buffer while keeping a
  /// copy for the CSV re-parse.
  class TeeBuf final : public std::streambuf {
   public:
    explicit TeeBuf(std::streambuf* inner) : inner_(inner) {}
    [[nodiscard]] std::streambuf* inner() const noexcept { return inner_; }
    [[nodiscard]] const std::string& text() const noexcept { return text_; }

   protected:
    int overflow(int ch) override {
      if (ch == traits_type::eof()) return traits_type::not_eof(ch);
      text_.push_back(static_cast<char>(ch));
      return inner_->sputc(static_cast<char>(ch));
    }
    std::streamsize xsputn(const char* s, std::streamsize n) override {
      text_.append(s, static_cast<std::size_t>(n));
      return inner_->sputn(s, n);
    }
    int sync() override { return inner_->pubsync(); }

   private:
    std::streambuf* inner_;
    std::string text_;
  };

  struct Samples {
    std::size_t n = 0;
    double mean = 0.0;
    double rel = 0.0;
  };

  static std::string env_or(const char* var, const char* fallback) {
    const char* v = std::getenv(var);
    return (v != nullptr && *v != '\0') ? v : fallback;
  }

  static int env_int(const char* var) {
    const char* v = std::getenv(var);
    return v != nullptr ? std::atoi(v) : 0;
  }

  // Build provenance baked in by bench/CMakeLists.txt; "unknown" keeps
  // ad-hoc compiles (e.g. compile_commands tooling) working.
  static const char* build_type() {
#ifdef CELLFLOW_BUILD_TYPE
    return CELLFLOW_BUILD_TYPE;
#else
    return "unknown";
#endif
  }
  static const char* compiler() {
#ifdef CELLFLOW_COMPILER
    return CELLFLOW_COMPILER;
#else
    return "unknown";
#endif
  }

  std::string name_;
  std::string out_dir_;
  TeeBuf tee_;
  std::uint64_t rounds_ = 0;
  int repetitions_ = 1;
  std::map<std::string, Samples> dispersion_;
  std::map<std::string, std::uint64_t> memory_;
  std::chrono::steady_clock::time_point start_;
};

/// Registers the shared --threads flag and resolves it to a round-engine
/// policy: 0 (the default) defers to $CELLFLOW_THREADS (serial when
/// unset), N >= 1 forces kParallel{N}. Assign the result to
/// WorkloadSpec::parallel.
inline ParallelPolicy parallel_from_cli(CliArgs& cli) {
  const auto threads = cli.get_uint(
      "threads", 0,
      "round-engine worker threads (0: $CELLFLOW_THREADS or serial)");
  return threads == 0 ? parallel_policy_from_env()
                      : ParallelPolicy::parallel(static_cast<int>(threads));
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "=== " << title << " ===\n"
            << "reproduces: " << paper_ref << '\n'
            << "(absolute values depend on the realization of the paper's\n"
            << " nondeterministic choices; compare shapes, not numbers)\n\n";
}

/// Mean throughput across seeds for a spec (asserting safety internally).
inline double mean_throughput(const WorkloadSpec& spec,
                              const std::vector<std::uint64_t>& seeds) {
  return run_workload_seeds(spec, seeds).mean();
}

}  // namespace cellflow::bench
