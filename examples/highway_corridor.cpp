// Highway corridor: the motivating scenario of the paper's introduction —
// high-density, high-velocity traffic where vehicles couple into a moving
// lattice. A long straight corridor of cells carries saturating traffic;
// we sweep the coupling velocity and report the throughput/latency/
// occupancy frontier, illustrating the paper's phase-transition framing:
// beyond the signaling-limited regime, raising v no longer buys
// throughput.
//
// Run:  ./highway_corridor [--length=12] [--rounds=6000]
#include <iostream>

#include "failure/failure_model.hpp"
#include "grid/path.hpp"
#include "sim/observers.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cellflow;
  CliArgs cli(argc, argv);
  const auto length = static_cast<int>(cli.get_uint("length", 12, "corridor cells"));
  const auto rounds = cli.get_uint("rounds", 6000, "rounds per sweep point");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();

  std::cout << "Highway corridor: " << length << " cells, saturating onramp, "
            << rounds << " rounds per velocity\n\n";

  TextTable table;
  table.set_header({"v", "throughput", "mean latency", "mean population",
                    "blocked cells/round"});

  for (const double v : {0.05, 0.1, 0.15, 0.2, 0.25}) {
    SystemConfig cfg;
    cfg.side = length;
    cfg.params = Params(/*l=*/0.25, /*rs=*/0.05, v);
    cfg.sources = {CellId{0, 0}};
    cfg.target = CellId{length - 1, 0};
    System sys(cfg);
    // Carve the corridor row so this really is a 1-lane highway.
    const Path corridor = make_straight_path(
        sys.grid(), CellId{0, 0}, Direction::kEast,
        static_cast<std::size_t>(length));
    carve_path(sys, corridor);

    NoFailures none;
    Simulator sim(sys, none);
    ThroughputMeter meter;
    ProgressTracker progress;
    OccupancyTracker occupancy;
    BlockingStats blocking;
    SafetyMonitor safety;
    sim.add_observer(meter);
    sim.add_observer(progress);
    sim.add_observer(occupancy);
    sim.add_observer(blocking);
    sim.add_observer(safety);
    sim.run(rounds);

    if (!safety.clean()) {
      std::cerr << "SAFETY VIOLATION\n" << safety.report() << '\n';
      return 1;
    }
    table.add_numeric_row(format_sig(v, 3),
                          {meter.throughput(), progress.latency().mean(),
                           occupancy.population().mean(),
                           blocking.mean_blocked_per_round()});
  }
  std::cout << table.to_string()
            << "\nreading: throughput rises with v until signaling\n"
               "(permission-to-move) becomes the bottleneck; latency falls\n"
               "with v; the blocked-cells column shows the cost of safety.\n";
  return 0;
}
