// Quickstart: the paper's Figure-1 world — a 4×4 grid with source ⟨1,0⟩
// and target ⟨2,2⟩ — simulated for a few hundred rounds with the default
// policies. Shows the minimal public-API surface:
//
//   1. describe the system        (SystemConfig)
//   2. construct it               (System)
//   3. drive it                   (Simulator + FailureModel)
//   4. observe it                 (observers, render_ascii)
//
// Run:  ./quickstart [--rounds=400] [--fail-demo=true]
#include <iostream>

#include "failure/failure_model.hpp"
#include "sim/observers.hpp"
#include "sim/render.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace cellflow;
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 400, "rounds to simulate");
  const bool fail_demo =
      cli.get_bool("fail-demo", true, "crash+recover a cell mid-run");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();

  // 1. Describe the world of the paper's Figure 1: 4×4 cells, entities of
  //    side l = 0.25 needing rs = 0.05 edge separation, moving v = 0.1
  //    per round.
  SystemConfig cfg;
  cfg.side = 4;
  cfg.params = Params(/*l=*/0.25, /*rs=*/0.05, /*v=*/0.1);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{2, 2};

  // 2. Construct. Default policies: round-robin token rotation and a
  //    saturating entry-edge source.
  System sys(cfg);

  // 3. A failure environment: Figure 1 shows cell ⟨2,1⟩ failed. We crash
  //    it a quarter of the way in and recover it halfway.
  ScriptedFailures failures(
      fail_demo ? std::vector<ScriptedFailures::Action>{
                      {rounds / 4, CellId{2, 1}, false},
                      {rounds / 2, CellId{2, 1}, true}}
                : std::vector<ScriptedFailures::Action>{});

  // 4. Observers: throughput + a safety monitor that re-proves Theorem 5
  //    on every round of this particular execution.
  Simulator sim(sys, failures);
  ThroughputMeter meter;
  SafetyMonitor safety;
  ProgressTracker progress;
  sim.add_observer(meter);
  sim.add_observer(safety);
  sim.add_observer(progress);

  std::cout << "initial state:\n" << render_ascii(sys) << '\n';
  sim.run(rounds);
  std::cout << "final state (T target, S source, X failed, digits = "
               "entities, arrows = next):\n"
            << render_ascii(sys) << '\n';

  std::cout << render_summary(sys) << '\n';
  std::cout << "K-round throughput (K=" << rounds << "): " << meter.throughput()
            << " entities/round\n";
  if (progress.completed() > 0) {
    std::cout << "mean birth->target latency: " << progress.latency().mean()
              << " rounds over " << progress.completed() << " entities\n";
  }
  std::cout << "safety (Theorem 5 oracles, every round): "
            << (safety.clean() ? "CLEAN" : safety.report()) << '\n';
  return safety.clean() ? 0 : 1;
}
