// ASCII playback: single-step through a small system, printing the grid
// and the trace events of each round — the closest thing to watching
// Figure 1 animate in a terminal. Useful for building intuition about the
// signal/token mechanics (watch the blocked column fill and drain).
//
// Run:  ./ascii_playback [--rounds=40] [--side=4] [--every=1]
#include <iostream>

#include "failure/failure_model.hpp"
#include "sim/render.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace cellflow;
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 40, "rounds to play");
  const auto side = static_cast<int>(cli.get_uint("side", 4, "grid side"));
  const auto every = cli.get_uint("every", 1, "print every Nth round");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();

  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(/*l=*/0.25, /*rs=*/0.05, /*v=*/0.25);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{side - 2, side - 1};
  System sys(cfg);

  NoFailures none;
  Simulator sim(sys, none);
  TraceRecorder trace;
  sim.add_observer(trace);

  std::size_t printed_records = 0;
  for (std::uint64_t k = 0; k < rounds; ++k) {
    sim.step();
    if (k % every != 0) continue;
    std::cout << "== round " << sys.round() << " ==\n" << render_ascii(sys);
    for (; printed_records < trace.records().size(); ++printed_records)
      std::cout << "   " << to_string(trace.records()[printed_records])
                << '\n';
    std::cout << '\n';
  }
  std::cout << render_summary(sys) << '\n';
  std::cout << "\ndist view (hop estimates to the target):\n";
  RenderOptions opts;
  opts.show_dist = true;
  std::cout << render_ascii(sys, opts);
  return 0;
}
