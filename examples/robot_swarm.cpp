// Robot swarm over virtual stationary automata: §I's third motivating
// scenario — "even where the entities are active and cells are not, the
// entities can cooperate to emulate a virtual active cell expressly for
// the purposes of distributed coordination" (the VSA idea of Dolev/
// Gilbert/Lynch/Mitra/Nolte the paper cites).
//
// Here the protocol's System is the *virtual* layer: its entities are
// waypoint carriers. Each physical robot runs a simple first-order
// kinematic controller (max speed u ≥ v) chasing the waypoint of its
// virtual twin. The demo reports the tracking error between the physical
// swarm and the virtual plan — small when u comfortably exceeds the cell
// velocity v, demonstrating that the discrete protocol can drive
// continuous robots while its safety margin absorbs the tracking error
// (choose rs > 2·max-error and physical robots never collide).
//
// Run:  ./robot_swarm [--rounds=1200] [--speed=0.3] [--substeps=5]
#include <cmath>
#include <iostream>
#include <unordered_map>

#include "failure/failure_model.hpp"
#include "sim/observers.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace {

using namespace cellflow;

struct Robot {
  Vec2 position;
};

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 1200, "protocol rounds");
  const double speed =
      cli.get_double("speed", 0.3, "robot max speed per round (>= v)");
  const auto substeps =
      cli.get_uint("substeps", 5, "kinematic integration steps per round");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();

  SystemConfig cfg;
  cfg.side = 6;
  cfg.params = Params(/*l=*/0.2, /*rs=*/0.15, /*v=*/0.1);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{4, 5};
  System sys(cfg);

  NoFailures none;
  Simulator sim(sys, none);
  SafetyMonitor safety;
  sim.add_observer(safety);

  std::unordered_map<EntityId, Robot> robots;
  RunningStats tracking_error;
  std::uint64_t retired = 0;

  for (std::uint64_t k = 0; k < rounds; ++k) {
    sim.step();

    // Spawn physical robots for newly injected virtual entities; retire
    // robots whose twin was consumed.
    for (const auto& [cell, eid] : sys.last_events().injected) {
      (void)cell;
      // Find the twin's position.
      for (const CellState& c : sys.cells()) {
        if (const Entity* e = c.find(eid)) {
          robots.emplace(eid, Robot{e->center});
          break;
        }
      }
    }
    for (const TransferEvent& t : sys.last_events().transfers) {
      if (t.consumed) {
        robots.erase(t.entity);
        ++retired;
      }
    }

    // Kinematic tracking: each robot chases its virtual twin's current
    // position with speed-limited straight-line motion. The error is
    // sampled at every kinematic substep — the robot is at its farthest
    // from the twin right after the twin's discrete jump, and converges
    // within the round when speed > v.
    for (auto& [eid, robot] : robots) {
      const Entity* twin = nullptr;
      for (const CellState& c : sys.cells()) {
        if ((twin = c.find(eid)) != nullptr) break;
      }
      if (twin == nullptr) continue;
      const double step_budget = speed / static_cast<double>(substeps);
      for (std::uint64_t s = 0; s < substeps; ++s) {
        tracking_error.add(l2_distance(twin->center, robot.position));
        const Vec2 delta = twin->center - robot.position;
        const double dist = l2_distance(twin->center, robot.position);
        if (dist < 1e-12) break;
        const double hop = std::min(step_budget, dist);
        robot.position += (hop / dist) * delta;
      }
    }
  }

  std::cout << "virtual plan: " << sys.total_arrivals()
            << " deliveries; physical robots retired: " << retired << '\n'
            << "robots still in the field: " << robots.size() << '\n';
  std::cout << "tracking error (robot vs virtual twin): mean "
            << tracking_error.mean() << ", max " << tracking_error.max()
            << " (cell velocity v = " << cfg.params.velocity()
            << ", robot speed " << speed << ")\n";
  // The worst single-round twin displacement is v + l: v of motion plus
  // the flush snap at a cell hand-off (Figure 6's entry placement). A
  // robot with speed > v + l therefore re-converges within the round,
  // and the max tracking error stays below that bound.
  const double bound = cfg.params.velocity() + cfg.params.entity_length();
  std::cout << "error bound v + l = " << bound << ": "
            << (tracking_error.max() <= bound + 1e-9 ? "HELD" : "EXCEEDED")
            << '\n';
  std::cout << "virtual-layer safety: "
            << (safety.clean() ? "CLEAN" : safety.report()) << '\n';
  std::cout << "(deploy rule of thumb: pick rs > 2*(v + l) - or robot\n"
            << " speed >> v - so physical separation inherits the virtual\n"
            << " layer's guarantee minus twice the tracking error)\n";
  return safety.clean() ? 0 : 1;
}
