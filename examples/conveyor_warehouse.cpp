// Conveyor warehouse: the paper's second motivating domain — packages
// routed on a grid of multidirectional conveyor cells (§I cites
// omniwheel conveyors). A boustrophedon (snake) conveyor line covers the
// floor; packages enter at the dock and exit at the chute. Midway, a
// conveyor cell jams (crash failure) — upstream packages *halt with
// guaranteed spacing* instead of piling up; when the jam is cleared
// (recovery), flow resumes. Demonstrates Theorem 5 + Theorem 10 in a
// non-traffic domain.
//
// Run:  ./conveyor_warehouse [--width=5] [--rows=4] [--rounds=4000]
#include <iostream>

#include "failure/failure_model.hpp"
#include "grid/path.hpp"
#include "sim/observers.hpp"
#include "sim/render.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace cellflow;
  CliArgs cli(argc, argv);
  const auto width = static_cast<int>(cli.get_uint("width", 5, "conveyor cells per lane"));
  const auto lanes = static_cast<int>(cli.get_uint("lanes", 3, "conveyor lanes"));
  const auto rounds = cli.get_uint("rounds", 4000, "total rounds");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();

  // Serpentine lanes are spaced two rows apart (so carving really forces
  // belt order — see make_serpentine_path).
  const int side = std::max(width, 2 * lanes - 1);
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(/*l=*/0.2, /*rs=*/0.1, /*v=*/0.2);  // chunky packages
  cfg.sources = {CellId{0, 0}};  // the dock

  const Grid grid(side);
  const Path belt = make_serpentine_path(grid, CellId{0, 0}, width, lanes);
  cfg.target = belt.target();  // the chute
  System sys(cfg);
  carve_path(sys, belt);

  std::cout << "Conveyor belt (" << belt.length() << " cells, "
            << belt.turns() << " turns): " << belt.to_string() << "\n\n";

  // Jam the middle of the belt for the middle half of the run.
  const CellId jam = belt.cells()[belt.length() / 2];
  ScriptedFailures failures({{rounds / 4, jam, false},
                             {rounds / 2, jam, true}});

  Simulator sim(sys, failures);
  ThroughputMeter meter(rounds / 8);  // windowed series shows the jam dip
  SafetyMonitor safety;
  ProgressTracker progress;
  OccupancyTracker occupancy;
  sim.add_observer(meter);
  sim.add_observer(safety);
  sim.add_observer(progress);
  sim.add_observer(occupancy);
  sim.run(rounds);

  std::cout << "final floor state:\n" << render_ascii(sys) << '\n';
  std::cout << render_summary(sys) << "\n\n";

  std::cout << "windowed throughput (window = " << rounds / 8 << " rounds):\n";
  for (std::size_t w = 0; w < meter.windowed().size(); ++w) {
    std::cout << "  window " << w << ": " << meter.windowed()[w];
    const std::uint64_t lo = w * (rounds / 8);
    const std::uint64_t hi = (w + 1) * (rounds / 8);
    if (lo >= rounds / 4 && hi <= rounds / 2) std::cout << "   <-- jammed";
    std::cout << '\n';
  }

  std::cout << "\npackages delivered: " << meter.arrivals()
            << ", mean dock->chute latency: " << progress.latency().mean()
            << " rounds, peak packages on one cell: "
            << occupancy.peak_cell_occupancy() << '\n';
  std::cout << "spacing guarantee (Theorem 5): "
            << (safety.clean() ? "never violated, including during the jam"
                               : safety.report())
            << '\n';
  return safety.clean() ? 0 : 1;
}
