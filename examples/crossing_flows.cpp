// Crossing flows: the §V future-work extension live. Two entity types —
// eastbound freight and northbound commuters — cross at the center of
// the grid. Watch the per-flow routing tables disagree at the crossing
// cell, the token time-share it, and both flows deliver, with the
// Theorem-5 spacing guarantee intact across types.
//
// Run:  ./crossing_flows [--rounds=3000] [--side=7]
#include <iostream>

#include "multiflow/mf_predicates.hpp"
#include "multiflow/mf_system.hpp"
#include "util/cli.hpp"

namespace {

using namespace cellflow;

// Minimal ASCII rendering for MfSystem: digits = entity count, letter =
// flow of the occupants (a/b/c…), X = failed, 0/1 targets as A/B.
std::string render(const MfSystem& sys) {
  const int n = sys.grid().side();
  std::string out;
  for (int j = n - 1; j >= 0; --j) {
    out += std::to_string(j) + " ";
    for (int i = 0; i < n; ++i) {
      const CellId id{i, j};
      const MfCellState& c = sys.cell(id);
      char mark = ' ';
      for (FlowId f = 0; f < sys.flow_count(); ++f)
        if (sys.flow(f).target == id) mark = static_cast<char>('A' + f);
      if (c.failed) mark = 'X';
      char occupant = '.';
      if (c.has_entities())
        occupant = static_cast<char>('a' + c.members_flow());
      out += '[';
      out += mark;
      out += occupant;
      out += std::to_string(c.members.size() % 10);
      out += ']';
    }
    out += '\n';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 3000, "rounds to simulate");
  const auto side = static_cast<int>(cli.get_uint("side", 7, "grid side"));
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();

  MfSystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(/*l=*/0.2, /*rs=*/0.1, /*v=*/0.1);
  const int mid = side / 2;
  cfg.flows = {
      FlowSpec{CellId{side - 1, mid}, {CellId{0, mid}}},  // freight W→E
      FlowSpec{CellId{mid, side - 1}, {CellId{mid, 0}}},  // commuters S→N
  };
  MfSystem sys(cfg, make_choose_policy("round-robin", 1), /*source_seed=*/1);

  std::cout << "flow a (freight):   <0," << mid << "> -> <" << side - 1 << ','
            << mid << "> (target A)\n"
            << "flow b (commuters): <" << mid << ",0> -> <" << mid << ','
            << side - 1 << "> (target B)\n\n";

  bool clean = true;
  for (std::uint64_t k = 0; k < rounds; ++k) {
    sys.update();
    if (!check_mf_all(sys).empty()) clean = false;
    if (k == rounds / 2) {
      std::cout << "midpoint snapshot (round " << sys.round() << "):\n"
                << render(sys) << '\n';
    }
  }

  std::cout << "final snapshot:\n" << render(sys) << '\n';
  const MfCellState& cross = sys.cell(CellId{mid, mid});
  std::cout << "crossing cell <" << mid << ',' << mid << "> routing: flow a -> "
            << to_string(cross.next[0]) << ", flow b -> "
            << to_string(cross.next[1]) << '\n';
  std::cout << "deliveries: freight " << sys.arrivals(0) << ", commuters "
            << sys.arrivals(1) << " over " << rounds << " rounds\n";
  std::cout << "spacing + flow-purity oracles: "
            << (clean ? "CLEAN every round" : "VIOLATED") << '\n';
  return clean ? 0 : 1;
}
