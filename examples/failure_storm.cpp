// Failure storm: the §IV fail/recover regime live. An 8×8 grid carries
// traffic while every cell randomly crashes (pf) and recovers (pr) each
// round. Prints periodic snapshots and a final report: throughput
// degradation vs the failure-free baseline, stabilization behavior, and
// the safety verdict. This is Figure 9's world, watchable.
//
// Run:  ./failure_storm [--pf=0.02] [--pr=0.1] [--rounds=8000] [--seed=42]
#include <iostream>

#include "failure/failure_model.hpp"
#include "sim/observers.hpp"
#include "sim/render.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace cellflow;
  CliArgs cli(argc, argv);
  const double pf = cli.get_double("pf", 0.02, "per-round fail probability");
  const double pr = cli.get_double("pr", 0.1, "per-round recovery probability");
  const auto rounds = cli.get_uint("rounds", 8000, "rounds to simulate");
  const auto seed = cli.get_uint("seed", 42, "rng seed");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();

  SystemConfig cfg;
  cfg.side = 8;
  cfg.params = Params(/*l=*/0.2, /*rs=*/0.05, /*v=*/0.2);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 7};

  // Baseline: the same system without failures.
  double baseline = 0.0;
  {
    System sys(cfg, make_choose_policy("random", seed));
    NoFailures none;
    Simulator sim(sys, none);
    ThroughputMeter meter;
    sim.add_observer(meter);
    sim.run(rounds);
    baseline = meter.throughput();
  }

  // The storm.
  System sys(cfg, make_choose_policy("random", seed));
  RandomFailRecover failures(pf, pr, seed ^ 0xBADC0DE);
  Simulator sim(sys, failures);
  ThroughputMeter meter;
  SafetyMonitor safety;
  OccupancyTracker occupancy;
  sim.add_observer(meter);
  sim.add_observer(safety);
  sim.add_observer(occupancy);

  std::cout << "failure storm on 8x8: pf=" << pf << " pr=" << pr
            << " (expected failed fraction " << pf / (pf + pr) << ")\n\n";
  const std::uint64_t snapshots = 4;
  for (std::uint64_t s = 0; s < snapshots; ++s) {
    for (std::uint64_t k = 0; k < rounds / snapshots; ++k) sim.step();
    std::cout << "--- " << render_summary(sys) << " ---\n"
              << render_ascii(sys) << '\n';
  }

  std::cout << "throughput under storm: " << meter.throughput() << '\n'
            << "failure-free baseline:  " << baseline << '\n'
            << "degradation:            "
            << (baseline > 0.0 ? (1.0 - meter.throughput() / baseline) * 100.0
                               : 0.0)
            << "%\n"
            << "fail events: " << failures.total_failures()
            << ", recoveries: " << failures.total_recoveries() << '\n'
            << "entities stranded in flight: " << sys.entity_count() << '\n'
            << "safety under " << failures.total_failures()
            << " crashes (Theorem 5): "
            << (safety.clean() ? "CLEAN" : safety.report()) << '\n';
  return safety.clean() ? 0 : 1;
}
