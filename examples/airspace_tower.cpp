// Airspace tower: the 3-D extension (§V) in the paper's own motivating
// domain — air traffic. Delivery drones launch from a ground pad, climb
// through a vertical corridor of 1-unit airspace cells, and land on a
// rooftop hub at the top. Mid-run, a slab of airspace closes (storm cell
// = crash failures) forcing a detour through the one remaining gap; the
// separation guarantee holds throughout, in all three axes.
//
// Run:  ./airspace_tower [--rounds=3000] [--nz=8]
#include <iostream>

#include "flow3d/predicates3.hpp"
#include "flow3d/system3.hpp"
#include "util/cli.hpp"

namespace {

using namespace cellflow;

// Compact per-level rendering: one line per z level, entity counts.
std::string render_levels(const System3& sys) {
  std::string out;
  for (int z = sys.grid().nz() - 1; z >= 0; --z) {
    out += "z=" + std::to_string(z) + ": ";
    std::size_t level_count = 0;
    std::size_t failed = 0;
    for (int x = 0; x < sys.grid().nx(); ++x) {
      for (int y = 0; y < sys.grid().ny(); ++y) {
        const CellState3& c = sys.cell(CellId3{x, y, z});
        level_count += c.members.size();
        if (c.failed) ++failed;
      }
    }
    out += std::to_string(level_count) + " drone(s)";
    if (failed > 0) out += ", " + std::to_string(failed) + " cell(s) closed";
    out += '\n';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs cli(argc, argv);
  const auto rounds = cli.get_uint("rounds", 3000, "rounds to simulate");
  const auto nz = static_cast<int>(cli.get_uint("nz", 8, "tower height"));
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  cli.finish();

  System3Config cfg;
  cfg.nx = 4;
  cfg.ny = 4;
  cfg.nz = nz;
  cfg.params = Params(/*l=*/0.25, /*rs=*/0.05, /*v=*/0.2);
  cfg.sources = {CellId3{1, 1, 0}};           // ground launch pad
  cfg.target = CellId3{1, 1, nz - 1};         // rooftop hub
  System3 sys(cfg);

  std::cout << "airspace tower 4x4x" << nz << ": pad <1,1,0> -> hub <1,1,"
            << nz - 1 << ">\n\n";

  bool clean = true;
  const int storm_z = nz / 2;
  for (std::uint64_t k = 0; k < rounds; ++k) {
    if (k == rounds / 3) {
      // Storm closes the mid-tower slab except the ⟨3,3⟩ gap.
      for (int x = 0; x < 4; ++x)
        for (int y = 0; y < 4; ++y)
          if (!(x == 3 && y == 3)) sys.fail(CellId3{x, y, storm_z});
      std::cout << "round " << k << ": storm closes level z=" << storm_z
                << " (gap at <3,3," << storm_z << ">)\n";
    }
    if (k == 2 * rounds / 3) {
      for (int x = 0; x < 4; ++x)
        for (int y = 0; y < 4; ++y) sys.recover(CellId3{x, y, storm_z});
      std::cout << "round " << k << ": storm clears\n";
    }
    sys.update();
    if (!check_all3(sys).empty()) clean = false;
  }

  std::cout << '\n' << render_levels(sys) << '\n';
  std::cout << "drones delivered: " << sys.total_arrivals() << " of "
            << sys.total_injected() << " launched ("
            << sys.entity_count() << " airborne)\n";
  std::cout << "3-axis separation (Theorem 5 in 3-D): "
            << (clean ? "CLEAN every round, storm included" : "VIOLATED")
            << '\n';
  return clean ? 0 : 1;
}
