// Unit tests for util/thread_pool.hpp — the substrate of the parallel
// round engine. The determinism-critical property is that shard
// boundaries are a pure function of (size, shard count); the pool itself
// only needs to run every task exactly once and surface exceptions.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace cellflow {
namespace {

TEST(ShardRanges, EmptyRangeYieldsNoShards) {
  for (const int shards : {1, 2, 8}) {
    EXPECT_TRUE(shard_ranges(0, shards).empty()) << shards;
  }
}

TEST(ShardRanges, RangeSmallerThanShardCountYieldsSingletons) {
  const auto ranges = shard_ranges(3, 8);
  ASSERT_EQ(ranges.size(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(ranges[s], (ShardRange{s, s + 1}));
  }
}

TEST(ShardRanges, ExactBoundariesArePinned) {
  // (10, 4): 10 = 4·2 + 2, so the first two shards get the extra element.
  const std::vector<ShardRange> expected = {
      {0, 3}, {3, 6}, {6, 8}, {8, 10}};
  EXPECT_EQ(shard_ranges(10, 4), expected);
  // Even split.
  const std::vector<ShardRange> even = {{0, 2}, {2, 4}, {4, 6}, {6, 8}};
  EXPECT_EQ(shard_ranges(8, 4), even);
}

TEST(ShardRanges, DeterministicForGivenSizeAndThreads) {
  for (std::size_t size = 0; size <= 64; ++size) {
    for (int shards = 1; shards <= 9; ++shards) {
      const auto a = shard_ranges(size, shards);
      const auto b = shard_ranges(size, shards);
      ASSERT_EQ(a, b) << "size=" << size << " shards=" << shards;
    }
  }
}

TEST(ShardRanges, PartitionInvariants) {
  for (std::size_t size = 1; size <= 64; ++size) {
    for (int shards = 1; shards <= 9; ++shards) {
      const auto ranges = shard_ranges(size, shards);
      ASSERT_EQ(ranges.size(),
                std::min<std::size_t>(static_cast<std::size_t>(shards), size));
      std::size_t cursor = 0;
      std::size_t min_len = size, max_len = 0;
      for (const ShardRange& r : ranges) {
        ASSERT_EQ(r.begin, cursor);        // contiguous, ascending
        ASSERT_GT(r.end, r.begin);         // non-empty
        min_len = std::min(min_len, r.end - r.begin);
        max_len = std::max(max_len, r.end - r.begin);
        cursor = r.end;
      }
      ASSERT_EQ(cursor, size);             // covers [0, size)
      ASSERT_LE(max_len - min_len, 1u);    // balanced
    }
  }
}

TEST(ShardRanges, RejectsNonPositiveShardCount) {
  EXPECT_THROW(shard_ranges(10, 0), ContractViolation);
}

TEST(ThreadPool, RejectsNonPositiveThreadCount) {
  EXPECT_THROW(ThreadPool pool(0), ContractViolation);
}

TEST(ThreadPool, EmptyBatchReturnsWithoutInvokingTask) {
  ThreadPool pool(4);
  int calls = 0;
  pool.run(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(997, 0);  // distinct slots — no synchronization
  pool.run(hits.size(), [&](std::size_t k) { ++hits[k]; });
  for (std::size_t k = 0; k < hits.size(); ++k)
    ASSERT_EQ(hits[k], 1) << "task " << k;
}

TEST(ThreadPool, BatchSmallerThanThreadCount) {
  ThreadPool pool(8);
  std::vector<int> hits(3, 0);
  pool.run(hits.size(), [&](std::size_t k) { ++hits[k]; });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  std::uint64_t total = 0;
  for (int batch = 0; batch < 50; ++batch) {
    std::vector<std::uint64_t> out(17, 0);
    pool.run(out.size(), [&](std::size_t k) { out[k] = k + 1; });
    total += std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  }
  EXPECT_EQ(total, 50u * (17u * 18u / 2u));
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  // Several tasks throw; the rethrown one must deterministically be the
  // lowest task index, independent of which worker ran what, and the
  // non-throwing tasks must still have executed.
  std::vector<int> hits(64, 0);
  try {
    pool.run(hits.size(), [&](std::size_t k) {
      if (k == 5 || k == 2 || k == 40)
        throw std::runtime_error("task " + std::to_string(k));
      ++hits[k];
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 2");
  }
  for (std::size_t k = 0; k < hits.size(); ++k) {
    if (k == 5 || k == 2 || k == 40) continue;
    ASSERT_EQ(hits[k], 1) << "task " << k;
  }
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run(4, [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  std::vector<int> hits(8, 0);
  pool.run(hits.size(), [&](std::size_t k) { ++hits[k]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 8);
}

TEST(ParallelFor, ComputesEveryElementWithAndWithoutPool) {
  const std::size_t n = 10000;
  std::vector<std::uint64_t> serial(n, 0), pooled(n, 0);
  parallel_for(nullptr, n, [&](std::size_t k) { serial[k] = k * k; });
  ThreadPool pool(4);
  parallel_for(&pool, n, [&](std::size_t k) { pooled[k] = k * k; });
  EXPECT_EQ(serial, pooled);
}

TEST(ParallelForShards, ShardOrderConcatenationIsAscending) {
  // The merge discipline the round engine relies on: one buffer per
  // shard, concatenated in shard order, equals the serial iteration.
  ThreadPool pool(4);
  const std::size_t n = 103;
  std::vector<std::vector<std::size_t>> buffers(
      static_cast<std::size_t>(pool.thread_count()));
  parallel_for_shards(&pool, n, [&](std::size_t s, ShardRange r) {
    for (std::size_t k = r.begin; k < r.end; ++k) buffers[s].push_back(k);
  });
  std::vector<std::size_t> merged;
  for (const auto& b : buffers) merged.insert(merged.end(), b.begin(), b.end());
  std::vector<std::size_t> expected(n);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(merged, expected);
}

}  // namespace
}  // namespace cellflow
