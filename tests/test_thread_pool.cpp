// Unit tests for util/thread_pool.hpp — the substrate of the parallel
// round engine. The determinism-critical property is that shard
// boundaries are a pure function of (size, shard count); the pool itself
// only needs to run every task exactly once and surface exceptions.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace cellflow {
namespace {

TEST(ShardRanges, EmptyRangeYieldsNoShards) {
  for (const int shards : {1, 2, 8}) {
    EXPECT_TRUE(shard_ranges(0, shards).empty()) << shards;
  }
}

TEST(ShardRanges, RangeSmallerThanShardCountYieldsSingletons) {
  const auto ranges = shard_ranges(3, 8);
  ASSERT_EQ(ranges.size(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(ranges[s], (ShardRange{s, s + 1}));
  }
}

TEST(ShardRanges, ExactBoundariesArePinned) {
  // (10, 4): 10 = 4·2 + 2, so the first two shards get the extra element.
  const std::vector<ShardRange> expected = {
      {0, 3}, {3, 6}, {6, 8}, {8, 10}};
  EXPECT_EQ(shard_ranges(10, 4), expected);
  // Even split.
  const std::vector<ShardRange> even = {{0, 2}, {2, 4}, {4, 6}, {6, 8}};
  EXPECT_EQ(shard_ranges(8, 4), even);
}

TEST(ShardRanges, DeterministicForGivenSizeAndThreads) {
  for (std::size_t size = 0; size <= 64; ++size) {
    for (int shards = 1; shards <= 9; ++shards) {
      const auto a = shard_ranges(size, shards);
      const auto b = shard_ranges(size, shards);
      ASSERT_EQ(a, b) << "size=" << size << " shards=" << shards;
    }
  }
}

TEST(ShardRanges, PartitionInvariants) {
  for (std::size_t size = 1; size <= 64; ++size) {
    for (int shards = 1; shards <= 9; ++shards) {
      const auto ranges = shard_ranges(size, shards);
      ASSERT_EQ(ranges.size(),
                std::min<std::size_t>(static_cast<std::size_t>(shards), size));
      std::size_t cursor = 0;
      std::size_t min_len = size, max_len = 0;
      for (const ShardRange& r : ranges) {
        ASSERT_EQ(r.begin, cursor);        // contiguous, ascending
        ASSERT_GT(r.end, r.begin);         // non-empty
        min_len = std::min(min_len, r.end - r.begin);
        max_len = std::max(max_len, r.end - r.begin);
        cursor = r.end;
      }
      ASSERT_EQ(cursor, size);             // covers [0, size)
      ASSERT_LE(max_len - min_len, 1u);    // balanced
    }
  }
}

TEST(ShardRanges, RejectsNonPositiveShardCount) {
  EXPECT_THROW(shard_ranges(10, 0), ContractViolation);
}

TEST(ThreadPool, RejectsNonPositiveThreadCount) {
  EXPECT_THROW(ThreadPool pool(0), ContractViolation);
}

TEST(ThreadPool, EmptyBatchReturnsWithoutInvokingTask) {
  ThreadPool pool(4);
  int calls = 0;
  pool.run(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(997, 0);  // distinct slots — no synchronization
  pool.run(hits.size(), [&](std::size_t k) { ++hits[k]; });
  for (std::size_t k = 0; k < hits.size(); ++k)
    ASSERT_EQ(hits[k], 1) << "task " << k;
}

TEST(ThreadPool, BatchSmallerThanThreadCount) {
  ThreadPool pool(8);
  std::vector<int> hits(3, 0);
  pool.run(hits.size(), [&](std::size_t k) { ++hits[k]; });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  std::uint64_t total = 0;
  for (int batch = 0; batch < 50; ++batch) {
    std::vector<std::uint64_t> out(17, 0);
    pool.run(out.size(), [&](std::size_t k) { out[k] = k + 1; });
    total += std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  }
  EXPECT_EQ(total, 50u * (17u * 18u / 2u));
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  // Several tasks throw; the rethrown one must deterministically be the
  // lowest task index, independent of which worker ran what, and the
  // non-throwing tasks must still have executed.
  std::vector<int> hits(64, 0);
  try {
    pool.run(hits.size(), [&](std::size_t k) {
      if (k == 5 || k == 2 || k == 40)
        throw std::runtime_error("task " + std::to_string(k));
      ++hits[k];
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 2");
  }
  for (std::size_t k = 0; k < hits.size(); ++k) {
    if (k == 5 || k == 2 || k == 40) continue;
    ASSERT_EQ(hits[k], 1) << "task " << k;
  }
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run(4, [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  std::vector<int> hits(8, 0);
  pool.run(hits.size(), [&](std::size_t k) { ++hits[k]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 8);
}

TEST(ParallelFor, ComputesEveryElementWithAndWithoutPool) {
  const std::size_t n = 10000;
  std::vector<std::uint64_t> serial(n, 0), pooled(n, 0);
  parallel_for(nullptr, n, [&](std::size_t k) { serial[k] = k * k; });
  ThreadPool pool(4);
  parallel_for(&pool, n, [&](std::size_t k) { pooled[k] = k * k; });
  EXPECT_EQ(serial, pooled);
}

TEST(ParallelForShards, ShardOrderConcatenationIsAscending) {
  // The merge discipline the round engine relies on: one buffer per
  // shard, concatenated in shard order, equals the serial iteration.
  ThreadPool pool(4);
  const std::size_t n = 103;
  std::vector<std::vector<std::size_t>> buffers(
      static_cast<std::size_t>(pool.thread_count()));
  parallel_for_shards(&pool, n, [&](std::size_t s, ShardRange r) {
    for (std::size_t k = r.begin; k < r.end; ++k) buffers[s].push_back(k);
  });
  std::vector<std::size_t> merged;
  for (const auto& b : buffers) merged.insert(merged.end(), b.begin(), b.end());
  std::vector<std::size_t> expected(n);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(merged, expected);
}

TEST(PlanStage, StagesAreStrictlyBarriered) {
  // A later stage must observe every write of the earlier one: stage 0
  // fills hits, the serial stage sums it, stage 2 checks the sum.
  ThreadPool pool(4);
  const std::size_t n = 64;
  std::vector<int> hits(n, 0);
  int serial_sum = 0;
  std::atomic<int> checked{0};
  const auto fill = [&](std::size_t k) { hits[k] = 1; };
  const auto sum = [&](std::size_t) {
    serial_sum = std::accumulate(hits.begin(), hits.end(), 0);
  };
  const auto check = [&](std::size_t) {
    if (serial_sum == static_cast<int>(n)) checked.fetch_add(1);
  };
  const ThreadPool::PlanStage stages[] = {
      {true, n, fill}, {false, 0, sum}, {true, 8, check}};
  pool.run_plan(stages, 3);
  EXPECT_EQ(serial_sum, static_cast<int>(n));
  EXPECT_EQ(checked.load(), 8);
}

TEST(PlanStage, SerialStageRunsOnTheCallingThread) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  const auto body = [&](std::size_t) { seen = std::this_thread::get_id(); };
  const ThreadPool::PlanStage stages[] = {{false, 0, body}};
  pool.run_plan(stages, 1);
  EXPECT_EQ(seen, caller);
}

TEST(PlanStage, AbortSkipsLaterStagesAndRethrowsLowestPair) {
  ThreadPool pool(4);
  std::atomic<int> later{0};
  const auto faulty = [](std::size_t k) {
    if (k == 2 || k == 5) throw std::runtime_error("task " + std::to_string(k));
  };
  const auto after = [&](std::size_t) { later.fetch_add(1); };
  const ThreadPool::PlanStage stages[] = {{true, 8, faulty}, {true, 8, after}};
  try {
    pool.run_plan(stages, 2);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 2");
  }
  EXPECT_EQ(later.load(), 0);
  // The pool stays usable after an aborted plan.
  std::vector<int> hits(8, 0);
  pool.run(hits.size(), [&](std::size_t k) { ++hits[k]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 8);
}

TEST(PlanStage, ReusableAcrossManyPlans) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  const auto add = [&](std::size_t k) { total.fetch_add(k + 1); };
  const auto noop = [](std::size_t) {};
  for (int i = 0; i < 50; ++i) {
    const ThreadPool::PlanStage stages[] = {
        {true, 16, add}, {false, 0, noop}, {true, 16, add}};
    pool.run_plan(stages, 3);
  }
  EXPECT_EQ(total.load(), 50u * 2u * (16u * 17u / 2u));
}

TEST(PlanStage, PoolOfOneRunsEverythingInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  const auto body = [&](std::size_t) {
    if (std::this_thread::get_id() != caller) off_thread.fetch_add(1);
  };
  const ThreadPool::PlanStage stages[] = {{true, 7, body}, {false, 0, body}};
  pool.run_plan(stages, 2);
  EXPECT_EQ(off_thread.load(), 0);
}

TEST(ThreadPool, DispatchStatsCountEachPublishedBatch) {
  ThreadPool pool(2);
  const DispatchStats before = pool.dispatch_stats();
  const auto noop = [](std::size_t) {};
  pool.run(4, noop);
  const ThreadPool::PlanStage stages[] = {{true, 4, noop}, {true, 4, noop}};
  pool.run_plan(stages, 2);  // a whole plan is a single dispatch
  const DispatchStats after = pool.dispatch_stats();
  EXPECT_EQ(after.dispatches - before.dispatches, 2u);
  EXPECT_GE(after.spin_wakes + after.park_wakes,
            before.spin_wakes + before.park_wakes);
}

}  // namespace
}  // namespace cellflow
