// Direct tests of the paper's key lemmas.
//
// Lemma 3:  H(x) holds at the post-Signal point of every round.
// Lemma 4:  if signal_{i,j} = ⟨m,n⟩ and signal_{m,n} = ⟨i,j⟩ (a 2-cycle),
//           no entity transfers between the two cells that round.
#include <gtest/gtest.h>

#include "core/move.hpp"
#include "core/predicates.hpp"
#include "core/system.hpp"
#include "helpers.hpp"

namespace cellflow {
namespace {

const Params kP(0.2, 0.1, 0.1);  // d = 0.3

TEST(Lemma3, HHoldsAtPostSignalPointOfBusyExecution) {
  System sys = testing::make_column_system(6, kP);
  int checks = 0;
  sys.set_phase_hook([&](const System& s, UpdatePhase phase) {
    if (phase != UpdatePhase::kAfterSignal) return;
    EXPECT_FALSE(check_h_predicate(s).has_value())
        << "H violated at round " << s.round();
    ++checks;
  });
  testing::run_rounds(sys, 400);
  EXPECT_EQ(checks, 400);
  EXPECT_GT(sys.total_arrivals(), 0u);  // the execution actually moved entities
}

TEST(Lemma3, HHoldsUnderFailuresToo) {
  System sys = testing::make_column_system(6, kP);
  sys.set_phase_hook([&](const System& s, UpdatePhase phase) {
    if (phase != UpdatePhase::kAfterSignal) return;
    EXPECT_FALSE(check_h_predicate(s).has_value());
  });
  for (int k = 0; k < 300; ++k) {
    if (k == 40) sys.fail(CellId{1, 3});
    if (k == 80) sys.fail(CellId{2, 3});
    if (k == 160) sys.recover(CellId{1, 3});
    sys.update();
  }
}

// Constructs the Lemma-4 scenario: two adjacent cells whose signals point
// at each other. In normal operation next_{i,j} = ⟨m,n⟩ and
// next_{m,n} = ⟨i,j⟩ requires a (transient) routing inversion; we force
// one via corrupt_control_state and a dist landscape that reproduces the
// mutual next on the following Route phase.
TEST(Lemma4, TwoCycleSignalsPreventTransfer) {
  // 1×4 corridor inside a 4×4 grid: carve row j = 0 only, target ⟨3,0⟩.
  SystemConfig cfg;
  cfg.side = 4;
  cfg.params = kP;
  cfg.sources = {};
  cfg.target = CellId{3, 0};
  System sys(cfg, nullptr, std::make_unique<NullSource>());
  for (const CellId id : sys.grid().all_cells())
    if (id.j != 0) sys.fail(id);

  // Entities near the shared boundary between ⟨1,0⟩ and ⟨2,0⟩, heading at
  // each other. Both are > d from their *other* strips so the mutual
  // grants can fire if tokens select them.
  const EntityId a = sys.seed_entity(CellId{1, 0}, Vec2{1.55, 0.5});
  const EntityId b = sys.seed_entity(CellId{2, 0}, Vec2{2.45, 0.5});

  // Corrupt dist so that Route (which reads these values next round)
  // produces next_{1,0} = ⟨2,0⟩ and next_{2,0} = ⟨1,0⟩:
  //   ⟨0,0⟩ = 9, ⟨1,0⟩ = 5, ⟨2,0⟩ = 5, ⟨3,0⟩ = 0 is pinned... so give
  //   ⟨2,0⟩ a *wrong* view by making ⟨3,0⟩ appear worse is impossible
  //   (target pinned at 0). Instead run the cycle in the column j
  //   direction: use the corridor ⟨1,0⟩↔⟨2,0⟩ with corrupted mutual
  //   nexts *and* corrupted mutual signals, then drive Move directly by
  //   one update and observe memberships.
  sys.corrupt_control_state(CellId{1, 0}, Dist::finite(5), CellId{2, 0},
                            CellId{2, 0}, CellId{2, 0});
  sys.corrupt_control_state(CellId{2, 0}, Dist::finite(5), CellId{1, 0},
                            CellId{1, 0}, CellId{1, 0});

  // One update: Route/Signal recompute from the corrupted dists. ⟨1,0⟩
  // sees neighbor dists {⟨0,0⟩: ∞(failed j>0)… ⟨0,0⟩ alive: ∞ initially,
  // ⟨2,0⟩: 5}; min is ⟨2,0⟩ → next_{1,0} = ⟨2,0⟩. Symmetrically ⟨2,0⟩:
  // neighbors ⟨1,0⟩: 5, ⟨3,0⟩: 0 → next_{2,0} = ⟨3,0⟩. To get a true
  // mutual-next we instead check the *post-Signal* state for whichever
  // 2-cycles arise and assert the Lemma-4 conclusion on memberships.
  const auto members_before_1 = sys.cell(CellId{1, 0}).members;
  const auto members_before_2 = sys.cell(CellId{2, 0}).members;

  bool saw_two_cycle = false;
  sys.set_phase_hook([&](const System& s, UpdatePhase phase) {
    if (phase != UpdatePhase::kAfterSignal) return;
    const OptCellId s1 = s.cell(CellId{1, 0}).signal;
    const OptCellId s2 = s.cell(CellId{2, 0}).signal;
    if (s1 == OptCellId(CellId{2, 0}) && s2 == OptCellId(CellId{1, 0}))
      saw_two_cycle = true;
  });
  sys.update();

  if (saw_two_cycle) {
    EXPECT_EQ(sys.cell(CellId{1, 0}).members.size(),
              members_before_1.size());
    EXPECT_EQ(sys.cell(CellId{2, 0}).members.size(),
              members_before_2.size());
  }
  // Regardless of whether the cycle materialized, safety holds and both
  // entities still exist exactly once.
  EXPECT_FALSE(check_safe(sys).has_value());
  EXPECT_FALSE(check_members_disjoint(sys).has_value());
  int found = 0;
  for (const CellId id : sys.grid().all_cells()) {
    if (sys.cell(id).find(a) != nullptr) ++found;
    if (sys.cell(id).find(b) != nullptr) ++found;
  }
  EXPECT_EQ(found, 2);
}

// The essence of Lemma 4 at the mechanism level: even when two adjacent
// cells move toward each other simultaneously, the strip conditions that
// gated their signals imply neither entity can cross in that round
// (v ≤ l < d keeps them short of the boundary).
TEST(Lemma4, HeadOnMovementCannotCrossInOneRound) {
  const Params p = kP;
  // ⟨1,0⟩'s east strip clear requires px + l/2 ≤ 2 − d → px ≤ 1.6.
  // Mirror for ⟨2,0⟩'s west strip: px ≥ 2.4. Entities at the extreme
  // admissible positions, moving toward each other by v:
  Entity left{EntityId{1}, Vec2{1.6, 0.5}};
  Entity right{EntityId{2}, Vec2{2.4, 0.5}};
  const auto lr = move_step(CellId{1, 0}, CellId{2, 0}, {left}, p);
  const auto rl = move_step(CellId{2, 0}, CellId{1, 0}, {right}, p);
  EXPECT_TRUE(lr.crossed.empty());
  EXPECT_TRUE(rl.crossed.empty());
  // And after the round they are still ≥ d − 2v apart ≥ l apart.
  EXPECT_GE(rl.staying[0].center.x - lr.staying[0].center.x,
            p.center_spacing() - 2 * p.velocity() - 1e-12);
}

}  // namespace
}  // namespace cellflow
