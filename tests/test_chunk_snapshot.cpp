// Chunked snapshot tests (DESIGN.md §12): the chunks section (tag 11)
// serializes only materialized chunks — live ones as full cells, parked
// ones as their summaries — and a restored engine continues
// bit-identically, parked regions included. The digest is defined over
// the full N×N cell space regardless of materialization, so dense and
// chunked engines in the same protocol state collide on it. Adversarial
// bytes against the chunk decoder surface as typed SnapshotErrors with
// the target engine untouched, exactly like the dense format suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "chunk/chunked_system.hpp"
#include "core/source.hpp"
#include "core/system.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/wire.hpp"

namespace cellflow {
namespace {

using snapshot::Errc;
using snapshot::SnapshotError;

constexpr std::uint32_t kTagChunks = 11;

SystemConfig column_config(int side) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, side - 1};
  return cfg;
}

/// Closed 2×2-chunk world whose three unpinned chunks all park: the
/// canonical fixture for parked-region serialization. Side 64 keeps
/// every chunk exactly 32×32 so chunk payloads are interchangeable in
/// size — the byte surgeries below rely on that.
chunk::ChunkedSystem parked_world() {
  SystemConfig cfg;
  cfg.side = 64;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {};
  cfg.target = CellId{33, 33};
  chunk::ChunkedSystem sys(std::move(cfg), nullptr,
                           std::make_unique<NullSource>());
  for (int r = 0; r < 160; ++r) sys.update();
  return sys;
}

std::vector<std::uint8_t> refix_checksum(std::vector<std::uint8_t> b) {
  b.resize(b.size() - 8);
  const std::uint64_t c =
      snapshot::fnv1a(std::span<const std::uint8_t>(b.data(), b.size()));
  for (int k = 0; k < 8; ++k) {
    b.push_back(static_cast<std::uint8_t>((c >> (8 * k)) & 0xFFu));
  }
  return b;
}

/// [start, end) of the section with tag `want`, header included.
std::pair<std::size_t, std::size_t> section_span(
    const std::vector<std::uint8_t>& bytes, std::uint32_t want) {
  std::size_t at = 8;
  for (;;) {
    const auto tag = static_cast<std::uint32_t>(
        static_cast<std::uint32_t>(bytes[at]) |
        (static_cast<std::uint32_t>(bytes[at + 1]) << 8) |
        (static_cast<std::uint32_t>(bytes[at + 2]) << 16) |
        (static_cast<std::uint32_t>(bytes[at + 3]) << 24));
    std::uint64_t len = 0;
    for (std::size_t k = 0; k < 8; ++k) {
      len |= static_cast<std::uint64_t>(bytes[at + 4 + k]) << (8 * k);
    }
    const std::size_t end = at + 12 + static_cast<std::size_t>(len);
    if (tag == want) return {at, end};
    at = end;
  }
}

void expect_rejected(chunk::ChunkedSystem& sys,
                     const std::vector<std::uint8_t>& bytes, Errc code,
                     const char* what) {
  const std::uint64_t before = snapshot::state_digest(sys);
  try {
    snapshot::restore(sys, bytes);
    FAIL() << what << ": accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), code) << what << ": " << e.what();
  }
  EXPECT_EQ(snapshot::state_digest(sys), before)
      << what << ": failed restore mutated the engine";
}

TEST(ChunkSnapshot, RoundTripContinuesBitIdentically) {
  chunk::ChunkedSystem sys(column_config(40));
  for (int r = 0; r < 60; ++r) sys.update();
  const auto bytes = snapshot::save(sys);

  chunk::ChunkedSystem restored(column_config(40));
  snapshot::restore(restored, bytes);
  ASSERT_EQ(snapshot::state_digest(restored), snapshot::state_digest(sys));
  ASSERT_EQ(restored.round(), sys.round());
  ASSERT_EQ(restored.store().live_count(), sys.store().live_count());
  ASSERT_EQ(restored.store().parked_count(), sys.store().parked_count());

  for (int r = 0; r < 60; ++r) {
    const RoundEvents& a = sys.update();
    const RoundEvents& b = restored.update();
    ASSERT_EQ(a.moved, b.moved) << "round " << r;
    ASSERT_EQ(a.blocked, b.blocked) << "round " << r;
    ASSERT_EQ(a.injected, b.injected) << "round " << r;
    ASSERT_EQ(snapshot::state_digest(sys), snapshot::state_digest(restored))
        << "round " << r;
  }
}

TEST(ChunkSnapshot, ParkedRegionsTravelAsSummaries) {
  chunk::ChunkedSystem sys = parked_world();
  ASSERT_EQ(sys.store().parked_count(), 3u);
  ASSERT_EQ(sys.store().live_count(), 1u);
  const auto bytes = snapshot::save(sys);

  // For comparison: the same protocol state with everything
  // materialized is much bigger on the wire.
  chunk::ChunkedSystem fat = parked_world();
  fat.set_round_scheduler(RoundScheduler::kExhaustive);
  const auto fat_bytes = snapshot::save(fat);
  EXPECT_LT(bytes.size() * 2, fat_bytes.size())
      << "parked summaries must be far smaller than full cells";

  SystemConfig cfg;
  cfg.side = 64;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {};
  cfg.target = CellId{33, 33};
  chunk::ChunkedSystem restored(std::move(cfg), nullptr,
                                std::make_unique<NullSource>());
  snapshot::restore(restored, bytes);
  EXPECT_EQ(restored.store().parked_count(), 3u);
  EXPECT_EQ(restored.store().live_count(), 1u);
  EXPECT_EQ(snapshot::state_digest(restored), snapshot::state_digest(sys));

  // The restored engine keeps behaving: perturb a (restored) parked
  // region and continue against the original.
  sys.fail(CellId{5, 5});
  restored.fail(CellId{5, 5});
  for (int r = 0; r < 40; ++r) {
    sys.update();
    restored.update();
    ASSERT_EQ(snapshot::state_digest(sys), snapshot::state_digest(restored))
        << "round " << r;
  }
}

TEST(ChunkSnapshot, DigestAgreesAcrossStorageModels) {
  // Dense and chunked engines stepped in lockstep produce the SAME
  // digest at every round boundary — the cross-model equality currency.
  System dense(column_config(40));
  dense.set_parallel_policy(ParallelPolicy::serial());
  chunk::ChunkedSystem ck(column_config(40));
  ck.set_parallel_policy(ParallelPolicy::serial());
  ASSERT_EQ(snapshot::state_digest(dense), snapshot::state_digest(ck));
  for (int r = 0; r < 80; ++r) {
    dense.update();
    ck.update();
    ASSERT_EQ(snapshot::state_digest(dense), snapshot::state_digest(ck))
        << "round " << r;
  }
}

TEST(ChunkSnapshot, RestoreIntoExhaustiveEngineMaterializesEverything) {
  chunk::ChunkedSystem sys = parked_world();
  const auto bytes = snapshot::save(sys);

  SystemConfig cfg;
  cfg.side = 64;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {};
  cfg.target = CellId{33, 33};
  chunk::ChunkedSystem restored(std::move(cfg), nullptr,
                                std::make_unique<NullSource>());
  restored.set_round_scheduler(RoundScheduler::kExhaustive);
  snapshot::restore(restored, bytes);
  EXPECT_EQ(restored.store().live_count(), restored.store().chunk_count())
      << "exhaustive engines materialize the whole restored world";
  EXPECT_EQ(snapshot::state_digest(restored), snapshot::state_digest(sys));

  sys.set_round_scheduler(RoundScheduler::kExhaustive);
  for (int r = 0; r < 30; ++r) {
    sys.update();
    restored.update();
    ASSERT_EQ(snapshot::state_digest(sys), snapshot::state_digest(restored))
        << "round " << r;
  }
}

TEST(ChunkSnapshot, RealizationsRejectEachOthersSnapshots) {
  System dense(column_config(40));
  for (int r = 0; r < 20; ++r) dense.update();
  chunk::ChunkedSystem ck(column_config(40));
  for (int r = 0; r < 20; ++r) ck.update();

  const auto dense_bytes = snapshot::save(dense);
  const auto chunk_bytes = snapshot::save(ck);

  expect_rejected(ck, dense_bytes, Errc::kConfigMismatch,
                  "dense snapshot into chunked engine");
  const std::uint64_t before = snapshot::state_digest(dense);
  try {
    snapshot::restore(dense, chunk_bytes);
    FAIL() << "chunked snapshot accepted by dense engine";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), Errc::kConfigMismatch);
  }
  EXPECT_EQ(snapshot::state_digest(dense), before);
}

TEST(ChunkSnapshot, AdversarialChunkBytesAreTypedAndAtomic) {
  chunk::ChunkedSystem sys = parked_world();
  ASSERT_GT(sys.store().parked_count(), 0u);
  const auto bytes = snapshot::save(sys);
  const auto [c0, c1] = section_span(bytes, kTagChunks);

  SystemConfig cfg;
  cfg.side = 64;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {};
  cfg.target = CellId{33, 33};
  chunk::ChunkedSystem target(std::move(cfg), nullptr,
                              std::make_unique<NullSource>());

  // Payload layout after the 12-byte section header: u64 chunk count,
  // then per chunk u32 index + u8 state + fixed-size body. The fixture's
  // first materialized chunk is q=0, parked (the target chunk, q=3, is
  // the only live one), so its body is 32×32 (meta u8, dist u32) pairs
  // starting at c0+25.
  {
    auto m = bytes;
    m[c0 + 12] = 50;  // chunk count beyond the 2×2 grid
    expect_rejected(target, refix_checksum(std::move(m)), Errc::kMalformed,
                    "count beyond chunk grid");
  }
  {
    auto m = bytes;
    m[c0 + 20] = 0xFF;  // first chunk index off the grid
    m[c0 + 21] = 0xFF;
    expect_rejected(target, refix_checksum(std::move(m)), Errc::kMalformed,
                    "chunk index off the grid");
  }
  {
    auto m = bytes;
    m[c0 + 20] = 3;  // first chunk claims index 3: order violation later
    expect_rejected(target, refix_checksum(std::move(m)), Errc::kMalformed,
                    "non-ascending chunk indices");
  }
  {
    auto m = bytes;
    m[c0 + 24] = 7;  // state byte outside {live, parked}
    expect_rejected(target, refix_checksum(std::move(m)), Errc::kMalformed,
                    "chunk state byte");
  }
  {
    auto m = bytes;
    ASSERT_EQ(m[c0 + 24], 2u) << "fixture's first chunk must be parked";
    m[c0 + 25] |= 0x08;  // reserved meta bit
    expect_rejected(target, refix_checksum(std::move(m)), Errc::kMalformed,
                    "reserved meta bits");
  }
  {
    auto m = bytes;
    m[c0 + 25] = 5;  // direction code past kNoDir
    expect_rejected(target, refix_checksum(std::move(m)), Errc::kMalformed,
                    "direction code out of range");
  }
  {
    auto m = bytes;
    // Slot 0 of chunk 0 is cell (0,0): a west next pointer points off
    // the grid, which no protocol state can produce.
    m[c0 + 25] = 1;
    expect_rejected(target, refix_checksum(std::move(m)), Errc::kMalformed,
                    "parked next pointer off the grid");
  }
  {
    // Delete the whole chunks section: required for this realization.
    auto m = bytes;
    m.erase(m.begin() + static_cast<std::ptrdiff_t>(c0),
            m.begin() + static_cast<std::ptrdiff_t>(c1));
    expect_rejected(target, refix_checksum(std::move(m)),
                    Errc::kMissingSection, "missing chunks section");
  }
  // The unmutated original must still restore cleanly afterwards.
  snapshot::restore(target, bytes);
  EXPECT_EQ(snapshot::state_digest(target), snapshot::state_digest(sys));
}

}  // namespace
}  // namespace cellflow
