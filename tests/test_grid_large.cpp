// Large-side index-arithmetic tests (ISSUE 8, S1): at side 4096 a dense
// cell index reaches 16'777'215 and products like j*side overflow 16-bit
// int and get uncomfortably close to INT_MAX misuse patterns. The grid,
// mask, and path modules widen to std::size_t before multiplying (audit
// note in the ChunkLayout file comment); these tests pin that discipline
// at N = 4096 — well past the N = 2048 the huge-grid bench runs — so a
// future refactor reintroducing a narrow product is caught by a unit
// test, not a corrupted world.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "chunk/chunk_layout.hpp"
#include "grid/grid.hpp"
#include "grid/path.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

constexpr int kSide = 4096;

TEST(GridLarge, IndexRoundTripsAtSide4096) {
  const Grid grid(kSide);
  ASSERT_EQ(grid.cell_count(), 16'777'216u);

  // Corners and extreme indices exactly.
  EXPECT_EQ(grid.index_of(CellId{0, 0}), 0u);
  EXPECT_EQ(grid.index_of(CellId{4095, 0}), 4095u);
  EXPECT_EQ(grid.index_of(CellId{0, 4095}), 16'773'120u);
  EXPECT_EQ(grid.index_of(CellId{4095, 4095}), 16'777'215u);
  EXPECT_EQ(grid.id_of(16'777'215u), (CellId{4095, 4095}));

  // Randomly sampled cells round-trip (the full sweep is 16.7M cells —
  // sampling keeps the suite fast while covering high/low mixes).
  Xoshiro256 rng(4096);
  for (int k = 0; k < 20'000; ++k) {
    const CellId id{static_cast<std::int32_t>(rng.below(kSide)),
                    static_cast<std::int32_t>(rng.below(kSide))};
    const std::size_t index = grid.index_of(id);
    ASSERT_LT(index, grid.cell_count());
    ASSERT_EQ(grid.id_of(index), id);
  }

  // Row-major adjacency of the index space at the widest row.
  EXPECT_EQ(grid.index_of(CellId{0, 2048}),
            grid.index_of(CellId{4095, 2047}) + 1);
}

TEST(GridLarge, ManhattanAtFullDiagonal) {
  const Grid grid(kSide);
  EXPECT_EQ(grid.manhattan(CellId{0, 0}, CellId{4095, 4095}), 8190);
  EXPECT_EQ(grid.manhattan(CellId{4095, 0}, CellId{0, 4095}), 8190);
  EXPECT_EQ(grid.manhattan(CellId{2048, 2048}, CellId{2048, 2048}), 0);
  // Symmetry with mixed magnitudes.
  EXPECT_EQ(grid.manhattan(CellId{1, 4095}, CellId{4095, 0}),
            grid.manhattan(CellId{4095, 0}, CellId{1, 4095}));
}

TEST(GridLarge, ChunkLayoutCoversSide4096) {
  const chunk::ChunkLayout layout(kSide);
  ASSERT_EQ(layout.chunks_x(), 128);
  ASSERT_EQ(layout.chunk_count(), 16'384u);
  // Last chunk's rect is full-size (4096 = 128·32, no clipping).
  const chunk::ChunkLayout::Rect last = layout.rect_of(16'383);
  EXPECT_EQ(last.i0, 4064);
  EXPECT_EQ(last.j0, 4064);
  EXPECT_EQ(last.w, chunk::kChunkSide);
  EXPECT_EQ(last.h, chunk::kChunkSide);
  // Slot arithmetic round-trips at the far corner.
  const CellId corner{4095, 4095};
  EXPECT_EQ(layout.cell_at(layout.chunk_of(corner), layout.slot_of(corner)),
            corner);
}

TEST(GridLarge, SnakePathSpansFullWidth) {
  const Grid grid(kSide);
  // 8 full-width boustrophedon rows: 32'768 cells, alternating heading.
  const Path p = make_snake_path(grid, CellId{0, 0}, kSide, 8);
  ASSERT_EQ(p.length(), 32'768u);
  EXPECT_EQ(p.source(), (CellId{0, 0}));
  EXPECT_EQ(p.target(), (CellId{0, 7}));  // even rows east, odd rows west
  EXPECT_EQ(p.cells()[4095], (CellId{4095, 0}));
  EXPECT_EQ(p.cells()[4096], (CellId{4095, 1}));
  // One turn entering and one leaving each row joint: 2 per joint.
  EXPECT_EQ(p.turns(), 14u);
}

TEST(GridLarge, SerpentinePathCrossesTheGrid) {
  const Grid grid(kSide);
  const Path p = make_serpentine_path(grid, CellId{0, 0}, kSide, 4);
  // 4 lanes of 4096 plus 3 connector cells.
  ASSERT_EQ(p.length(), 4u * 4096u + 3u);
  EXPECT_EQ(p.source(), (CellId{0, 0}));
  EXPECT_EQ(p.target(), (CellId{0, 6}));
}

TEST(GridLarge, StaircasePathHoldsExactTurnCount) {
  const Grid grid(kSide);
  // 6000 cells over 21 runs: the round-robin segment split reaches east
  // extent 3142 and north extent 2857 — both inside the 4096 side, while
  // 8000 cells would overflow the east edge.
  const Path p =
      make_turning_path(grid, CellId{0, 0}, Direction::kEast,
                        Direction::kNorth, 6000, 20);
  ASSERT_EQ(p.length(), 6000u);
  ASSERT_EQ(p.turns(), 20u);
  for (const CellId c : p.cells()) {
    ASSERT_TRUE(grid.contains(c));
  }
}

}  // namespace
}  // namespace cellflow
