// Qualitative reproduction of §IV's findings, asserted as trends (the
// shapes of Figures 7–9, not their absolute values):
//   Fig 7: throughput decreases in rs, increases in v, saturates at
//          large rs (one entity per cell);
//   Fig 8: throughput decreases with turns, then saturates;
//   Fig 9: throughput decreases in pf, increases in pr, with diminishing
//          returns in pr;
//   §IV text: throughput is independent of path length.
// These are the contract the benchmark binaries rely on. Shorter K than
// the paper's (for test runtime) with fixed seeds.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "util/stats.hpp"

namespace cellflow {
namespace {

constexpr std::uint64_t kSeed = 2026;

double throughput_at(WorkloadSpec spec, std::uint64_t rounds) {
  spec.rounds = rounds;
  const RunResult r = run_workload(spec, kSeed);
  EXPECT_TRUE(r.safety_clean) << r.safety_report;
  return r.throughput;
}

TEST(TrendsFig7, ThroughputDecreasesInRs) {
  const std::vector<double> rs_values = {0.05, 0.15, 0.25, 0.35, 0.45};
  std::vector<double> xs;
  std::vector<double> ys;
  for (const double rs : rs_values) {
    xs.push_back(rs);
    ys.push_back(throughput_at(fig7_base(rs, 0.2), 2500));
  }
  EXPECT_LT(ols_slope(xs, ys), 0.0);
  // Endpoint dominance, not just slope.
  EXPECT_GT(ys.front(), ys.back());
}

TEST(TrendsFig7, ThroughputIncreasesInV) {
  const std::vector<double> v_values = {0.05, 0.1, 0.2};
  std::vector<double> ys;
  for (const double v : v_values)
    ys.push_back(throughput_at(fig7_base(0.05, v), 2500));
  EXPECT_LT(ys[0], ys[1]);
  EXPECT_LT(ys[1], ys[2]);
}

TEST(TrendsFig7, ThroughputSaturatesAtLargeRs) {
  // Once rs forces one entity per cell, further increases change little.
  const double t55 = throughput_at(fig7_base(0.55, 0.2), 2500);
  const double t70 = throughput_at(fig7_base(0.70, 0.2), 2500);
  ASSERT_GT(t55, 0.0);
  EXPECT_NEAR(t70 / t55, 1.0, 0.15);
}

TEST(TrendsFig8, ThroughputDecreasesWithTurnsThenSaturates) {
  std::vector<double> ys;
  for (const std::size_t turns : {0u, 1u, 2u, 3u, 4u, 5u, 6u})
    ys.push_back(throughput_at(fig8_base(turns, 0.2, 0.2), 2500));
  // Straight beats heavily-turning.
  EXPECT_GT(ys[0], ys[5]);
  EXPECT_GT(ys[0], ys[6]);
  // Saturation at the high-turn end: the last two differ by little.
  ASSERT_GT(ys[5], 0.0);
  EXPECT_NEAR(ys[6] / ys[5], 1.0, 0.25);
  // Overall negative trend.
  const std::vector<double> xs = {0, 1, 2, 3, 4, 5, 6};
  EXPECT_LT(ols_slope(xs, ys), 0.0);
}

TEST(TrendsFig8, FasterConfigDominatesSlowerAtEveryTurnCount) {
  for (const std::size_t turns : {0u, 3u, 6u}) {
    const double fast = throughput_at(fig8_base(turns, 0.2, 0.2), 2000);
    const double slow = throughput_at(fig8_base(turns, 0.05, 0.1), 2000);
    EXPECT_GT(fast, slow) << "turns=" << turns;
  }
}

TEST(TrendsFig9, ThroughputDecreasesInPf) {
  WorkloadSpec lo = fig9_base(0.01, 0.1);
  WorkloadSpec hi = fig9_base(0.05, 0.1);
  lo.choose_policy = hi.choose_policy = "round-robin";
  const double tlo = throughput_at(lo, 8000);
  const double thi = throughput_at(hi, 8000);
  EXPECT_GT(tlo, thi);
  EXPECT_GT(thi, 0.0);  // system still delivers under failures
}

TEST(TrendsFig9, ThroughputIncreasesInPr) {
  const double tlo = throughput_at(fig9_base(0.03, 0.05), 8000);
  const double thi = throughput_at(fig9_base(0.03, 0.2), 8000);
  EXPECT_GT(thi, tlo);
}

TEST(TrendsFig9, FailuresHurtRelativeToFailureFree) {
  WorkloadSpec clean = fig9_base(0.03, 0.1);
  clean.pf = 0.0;
  clean.pr = 0.0;
  const double t_clean = throughput_at(clean, 8000);
  const double t_faulty = throughput_at(fig9_base(0.03, 0.1), 8000);
  EXPECT_GT(t_clean, t_faulty);
}

TEST(TrendsPathLength, ThroughputIndependentOfLength) {
  // §IV: "for a sufficiently large K, throughput is independent of the
  // length of the path." Compare straight columns of different lengths.
  std::vector<double> ys;
  for (const int side : {6, 8, 10, 12}) {
    WorkloadSpec spec;
    spec.config.side = side;
    spec.config.params = Params(0.25, 0.05, 0.2);
    spec.config.sources = {CellId{1, 0}};
    spec.config.target = CellId{1, side - 1};
    spec.rounds = 4000;
    ys.push_back(throughput_at(spec, 4000));
  }
  const double lo = *std::min_element(ys.begin(), ys.end());
  const double hi = *std::max_element(ys.begin(), ys.end());
  ASSERT_GT(lo, 0.0);
  EXPECT_LT((hi - lo) / hi, 0.15);  // within 15% across lengths 6–12
}

}  // namespace
}  // namespace cellflow
