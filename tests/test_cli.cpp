// Tests for the CLI flag parser used by examples and benches.
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace cellflow {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsFormParsesAllTypes) {
  auto cli = make({"--rs=0.05", "--rounds=2500", "--verbose=true",
                   "--policy=random", "--delta=-3"});
  EXPECT_DOUBLE_EQ(cli.get_double("rs", 0.0), 0.05);
  EXPECT_EQ(cli.get_uint("rounds", 0), 2500u);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_EQ(cli.get_string("policy", "x"), "random");
  EXPECT_EQ(cli.get_int("delta", 0), -3);
  cli.finish();
}

TEST(Cli, SpaceSeparatedValueForm) {
  auto cli = make({"--rs", "0.1", "--name", "fig7"});
  EXPECT_DOUBLE_EQ(cli.get_double("rs", 0.0), 0.1);
  EXPECT_EQ(cli.get_string("name", ""), "fig7");
  cli.finish();
}

TEST(Cli, BareFlagIsBooleanTrue) {
  auto cli = make({"--fast"});
  EXPECT_TRUE(cli.get_bool("fast", false));
  cli.finish();
}

TEST(Cli, MissingFlagsFallBack) {
  auto cli = make({});
  EXPECT_DOUBLE_EQ(cli.get_double("rs", 0.25), 0.25);
  EXPECT_EQ(cli.get_uint("rounds", 99), 99u);
  EXPECT_FALSE(cli.get_bool("fast", false));
  EXPECT_EQ(cli.get_string("policy", "round-robin"), "round-robin");
}

TEST(Cli, UnknownFlagRejectedAtFinish) {
  auto cli = make({"--tpyo=1"});
  (void)cli.get_double("typo", 0.0);
  EXPECT_THROW(cli.finish(), std::runtime_error);
}

TEST(Cli, MalformedNumberRejected) {
  auto cli = make({"--rs=abc"});
  EXPECT_THROW((void)cli.get_double("rs", 0.0), std::runtime_error);
  auto cli2 = make({"--rounds=12x"});
  EXPECT_THROW((void)cli2.get_uint("rounds", 0), std::runtime_error);
  auto cli3 = make({"--flag=maybe"});
  EXPECT_THROW((void)cli3.get_bool("flag", false), std::runtime_error);
}

TEST(Cli, DoubleWithTrailingGarbageRejected) {
  // std::stod would silently parse "--v=0.5x" as 0.5; the full-match
  // from_chars parser must reject it (and every other partial match).
  for (const char* bad : {"--v=0.5x", "--v=1e", "--v=2.5.1", "--v=0,5",
                          "--v= 0.5", "--v=0.5 ", "--v=", "--v=1d0"}) {
    auto cli = make({bad});
    EXPECT_THROW((void)cli.get_double("v", 0.0), std::runtime_error)
        << "accepted '" << bad << "'";
  }
}

TEST(Cli, DoubleAcceptsFullMatchForms) {
  auto cli = make({"--a=-0.25", "--b=1e-3", "--c=2.5E+2", "--d=42"});
  EXPECT_DOUBLE_EQ(cli.get_double("a", 0.0), -0.25);
  EXPECT_DOUBLE_EQ(cli.get_double("b", 0.0), 1e-3);
  EXPECT_DOUBLE_EQ(cli.get_double("c", 0.0), 250.0);
  EXPECT_DOUBLE_EQ(cli.get_double("d", 0.0), 42.0);
  cli.finish();
}

TEST(Cli, IntWithTrailingGarbageRejected) {
  for (const char* bad : {"--n=3x", "--n=0.5", "--n=2 ", "--n="}) {
    auto cli = make({bad});
    EXPECT_THROW((void)cli.get_int("n", 0), std::runtime_error)
        << "accepted '" << bad << "'";
  }
}

TEST(Cli, NonFlagPositionalRejected) {
  std::array<const char*, 2> argv = {"prog", "stray"};
  EXPECT_THROW(CliArgs(2, argv.data()), std::runtime_error);
}

TEST(Cli, HelpRequestedDetected) {
  auto cli = make({"--help"});
  EXPECT_TRUE(cli.help_requested());
  auto cli2 = make({"-h"});
  EXPECT_TRUE(cli2.help_requested());
}

TEST(Cli, HelpTextListsRegisteredFlags) {
  auto cli = make({});
  (void)cli.get_double("rs", 0.05, "safety spacing");
  (void)cli.get_uint("rounds", 2500, "rounds to simulate");
  const std::string help = cli.help_text();
  EXPECT_NE(help.find("--rs"), std::string::npos);
  EXPECT_NE(help.find("safety spacing"), std::string::npos);
  EXPECT_NE(help.find("--rounds"), std::string::npos);
}

TEST(Cli, NegativeNumberAsSpaceSeparatedValue) {
  // "-3" must not be mistaken for a flag.
  auto cli = make({"--delta", "-3"});
  EXPECT_EQ(cli.get_int("delta", 0), -3);
}

}  // namespace
}  // namespace cellflow
