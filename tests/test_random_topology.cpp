// Random-topology fuzzing for Theorem 10: progress must hold on ANY
// connected non-faulty region, not just the paths and columns the other
// suites use. Each case carves a random spanning tree of the grid (the
// sparsest connected topology — every routing decision is forced, every
// merge is a real contention point), seeds entities on random leaves,
// and requires every one of them to reach the target with safety intact.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/choose.hpp"
#include "core/predicates.hpp"
#include "failure/failure_model.hpp"
#include "grid/mask.hpp"
#include "sim/observers.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

// Uniform-ish random spanning tree via randomized DFS from the target.
CellMask random_tree(const Grid& grid, CellId root, Xoshiro256& rng) {
  CellMask in_tree(grid);
  std::vector<CellId> stack = {root};
  in_tree.set(root);
  while (!stack.empty()) {
    // Pick a random stack element to grow from (randomized growth).
    const std::size_t pick = rng.below(stack.size());
    const CellId cur = stack[pick];
    std::vector<CellId> fresh;
    for (const CellId nb : grid.neighbors(cur))
      if (!in_tree.test(nb)) fresh.push_back(nb);
    if (fresh.empty()) {
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(pick));
      continue;
    }
    const CellId chosen = fresh[rng.below(fresh.size())];
    in_tree.set(chosen);
    stack.push_back(chosen);
  }
  return in_tree;
}

// Keep only a random connected subset of the tree containing the root:
// drop each leaf with probability p (repeatedly), so topologies vary in
// size and shape, not just in branching.
void prune_leaves(const Grid& grid, CellMask& tree, CellId root,
                  Xoshiro256& rng, double p) {
  for (int pass = 0; pass < 3; ++pass) {
    for (const CellId id : grid.all_cells()) {
      if (!tree.test(id) || id == root) continue;
      int degree = 0;
      for (const CellId nb : grid.neighbors(id))
        if (tree.test(nb)) ++degree;
      if (degree <= 1 && rng.bernoulli(p)) tree.set(id, false);
    }
  }
}

class RandomTopology : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopology, AllSeededEntitiesReachTargetSafely) {
  Xoshiro256 rng(GetParam());
  const int side = 6 + static_cast<int>(rng.below(3));  // 6..8
  const Grid grid(side);
  const CellId target{
      static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(side))),
      static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(side)))};

  CellMask keep = random_tree(grid, target, rng);
  prune_leaves(grid, keep, target, rng, 0.4);
  ASSERT_GE(keep.count(), 2u);

  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(0.2, 0.1, 0.1);
  cfg.sources = {};
  cfg.target = target;
  System sys(cfg, make_choose_policy("random", GetParam()),
             std::make_unique<NullSource>());
  carve_mask(sys, keep);

  // Seed one entity at the center of up to 6 random kept cells.
  const auto kept_cells = keep.set_cells();
  std::size_t seeded = 0;
  for (int tries = 0; tries < 20 && seeded < 6; ++tries) {
    const CellId c = kept_cells[rng.below(kept_cells.size())];
    if (c == target || sys.cell(c).has_entities()) continue;
    sys.seed_entity(c, Vec2{c.i + 0.5, c.j + 0.5});
    ++seeded;
  }
  ASSERT_GT(seeded, 0u);

  NoFailures none;
  Simulator sim(sys, none);
  SafetyMonitor safety;
  sim.add_observer(safety);
  // Tree depth ≤ side², per-hop service is bounded; generous horizon.
  const bool done = sim.run_until(
      [&](const System& s) { return s.total_arrivals() == seeded; }, 30000);
  EXPECT_TRUE(done) << "only " << sys.total_arrivals() << '/' << seeded
                    << " arrived on tree of " << keep.count() << " cells";
  EXPECT_TRUE(safety.clean()) << safety.report();
}

TEST_P(RandomTopology, SurvivesMidRunLeafFailures) {
  // Fail random NON-articulation cells (leaves) mid-run: entities on the
  // remaining connected region must still arrive.
  Xoshiro256 rng(GetParam() ^ 0xFEED);
  const int side = 6;
  const Grid grid(side);
  const CellId target{1, 5};
  CellMask keep = random_tree(grid, target, rng);

  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(0.2, 0.1, 0.1);
  cfg.sources = {};
  cfg.target = target;
  System sys(cfg, make_choose_policy("random", GetParam()),
             std::make_unique<NullSource>());
  carve_mask(sys, keep);

  // Seed entities adjacent to the target's subtree root region so they
  // stay target-connected when leaves die: use cells within tree
  // distance 3 of the target.
  const auto rho = sys.reference_distances();
  std::size_t seeded = 0;
  for (const CellId c : keep.set_cells()) {
    if (c == target) continue;
    const Dist d = rho[grid.index_of(c)];
    if (d.is_finite() && d.hops() <= 3 && seeded < 4 &&
        !sys.cell(c).has_entities()) {
      sys.seed_entity(c, Vec2{c.i + 0.5, c.j + 0.5});
      ++seeded;
    }
  }
  ASSERT_GT(seeded, 0u);

  // Kill three random leaves farther than 4 hops from the target.
  int killed = 0;
  for (const CellId c : keep.set_cells()) {
    if (killed >= 3) break;
    const Dist d = rho[grid.index_of(c)];
    if (d.is_finite() && d.hops() > 4) {
      sys.fail(c);
      ++killed;
    }
  }

  NoFailures none;
  Simulator sim(sys, none);
  SafetyMonitor safety;
  sim.add_observer(safety);
  const bool done = sim.run_until(
      [&](const System& s) { return s.total_arrivals() == seeded; }, 30000);
  EXPECT_TRUE(done);
  EXPECT_TRUE(safety.clean()) << safety.report();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopology,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u));

}  // namespace
}  // namespace cellflow
