// Golden-trace regression: a tiny, fully deterministic scenario whose
// complete event trace is pinned verbatim. Any change to the round
// semantics — phase ordering, tie-breaking, strip arithmetic, transfer
// placement — shows up here as a diff, with the expected trace readable
// enough to re-derive by hand from the paper's Figures 4–6.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "failure/failure_model.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace cellflow {
namespace {

// 3×3 grid, l = 0.25, rs = 0.25 (d = 0.5), v = 0.25. One entity seeded at
// the center of ⟨0,0⟩; target ⟨2,0⟩ straight east.
//
// Hand derivation of the expected rounds (half = l/2 = 0.125):
//   round 0: Route wavefront: dist(⟨1,0⟩) = 1 from the target's 0; ⟨0,0⟩
//            still reads the ∞ snapshot → next = ⊥. No movement.
//   round 1: ⟨0,0⟩ adopts next = ⟨1,0⟩; ⟨1,0⟩ acquires the token and
//            grants (its west strip is empty). Move: px 0.5 → 0.75
//            (edge 0.875, no cross).
//   round 2: grant again; px 0.75 → 1.0, edge 1.125 > 1 → TRANSFER,
//            placed flush at px = 1.125.
//   rounds 3–5: target grants ⟨1,0⟩ every round;
//            px 1.125 → 1.375 → 1.625 → 1.875 (edge 2.0, not > 2: stays).
//   round 6: px → 2.125, edge 2.25 > 2 → CONSUMED by the target.
TEST(GoldenTrace, SingleEntityEastCorridor) {
  SystemConfig cfg;
  cfg.side = 3;
  cfg.params = Params(0.25, 0.25, 0.25);
  cfg.sources = {};
  cfg.target = CellId{2, 0};
  System sys(cfg, nullptr, std::make_unique<NullSource>());
  sys.seed_entity(CellId{0, 0}, Vec2{0.5, 0.5});

  NoFailures none;
  Simulator sim(sys, none);
  TraceRecorder trace;
  sim.add_observer(trace);
  sim.run(12);

  const std::string expected =
      "2 transfer p0 <0,0> -> <1,0>\n"
      "6 consume p0 <1,0> -> <2,0>\n";
  EXPECT_EQ(trace.serialize(), expected);
  EXPECT_EQ(sys.total_arrivals(), 1u);
}

// The same corridor with a failure at the midpoint: the entity must wait
// (fail round and recovery round pinned in the trace). Row 0 is carved
// (all j > 0 cells permanently failed) so no reroute around the failure
// exists — progress must wait for recovery.
TEST(GoldenTrace, CorridorWithFailureWindow) {
  SystemConfig cfg;
  cfg.side = 3;
  cfg.params = Params(0.25, 0.25, 0.25);
  cfg.sources = {};
  cfg.target = CellId{2, 0};
  System sys(cfg, nullptr, std::make_unique<NullSource>());
  for (const CellId id : sys.grid().all_cells())
    if (id.j != 0) sys.fail(id);
  sys.seed_entity(CellId{0, 0}, Vec2{0.5, 0.5});

  ScriptedFailures failures({{1, CellId{1, 0}, false},
                             {6, CellId{1, 0}, true}});
  Simulator sim(sys, failures);
  TraceRecorder trace;
  sim.add_observer(trace);
  sim.run(20);

  const std::string got = trace.serialize();
  EXPECT_NE(got.find("1 fail <1,0>"), std::string::npos) << got;
  EXPECT_NE(got.find("6 recover <1,0>"), std::string::npos) << got;
  // The transfer and consumption happen strictly after recovery.
  const auto recover_pos = got.find("6 recover");
  const auto transfer_pos = got.find("transfer p0");
  const auto consume_pos = got.find("consume p0");
  ASSERT_NE(transfer_pos, std::string::npos) << got;
  ASSERT_NE(consume_pos, std::string::npos) << got;
  EXPECT_GT(transfer_pos, recover_pos);
  EXPECT_GT(consume_pos, transfer_pos);
  EXPECT_EQ(sys.total_arrivals(), 1u);
}

}  // namespace
}  // namespace cellflow
