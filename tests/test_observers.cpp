// Tests for the observer/instrumentation layer.
#include "sim/observers.hpp"

#include <gtest/gtest.h>

#include "failure/failure_model.hpp"
#include "helpers.hpp"
#include "sim/simulator.hpp"

namespace cellflow {
namespace {

const Params kP(0.2, 0.1, 0.1);

TEST(ThroughputMeter, CountsArrivalsOverRounds) {
  System sys = testing::make_column_system(6, kP);
  NoFailures none;
  Simulator sim(sys, none);
  ThroughputMeter meter;
  sim.add_observer(meter);
  sim.run(1000);
  EXPECT_EQ(meter.rounds(), 1000u);
  EXPECT_EQ(meter.arrivals(), sys.total_arrivals());
  EXPECT_DOUBLE_EQ(meter.throughput(),
                   static_cast<double>(meter.arrivals()) / 1000.0);
  EXPECT_GT(meter.throughput(), 0.0);
}

TEST(ThroughputMeter, EmptyMeterReportsZero) {
  const ThroughputMeter meter;
  EXPECT_DOUBLE_EQ(meter.throughput(), 0.0);
  EXPECT_EQ(meter.rounds(), 0u);
}

TEST(ThroughputMeter, WindowedSeriesHasExpectedShape) {
  System sys = testing::make_column_system(6, kP);
  NoFailures none;
  Simulator sim(sys, none);
  ThroughputMeter meter(100);
  sim.add_observer(meter);
  sim.run(1000);
  ASSERT_EQ(meter.windowed().size(), 10u);
  // Warmup: the first window (pipeline filling) has lower throughput than
  // the steady-state tail.
  const auto& w = meter.windowed();
  EXPECT_LT(w.front(), w.back() + 1e-12);
  // Windowed means average to the global throughput.
  double sum = 0.0;
  for (const double x : w) sum += x;
  EXPECT_NEAR(sum / 10.0, meter.throughput(), 1e-9);
}

TEST(SafetyMonitor, CleanOnHealthyRun) {
  System sys = testing::make_column_system(5, kP);
  NoFailures none;
  Simulator sim(sys, none);
  SafetyMonitor safety;
  sim.add_observer(safety);
  sim.run(300);
  EXPECT_TRUE(safety.clean());
  EXPECT_EQ(safety.report(), "0 violation(s)");
}

TEST(SafetyMonitor, FlagsInjectedViolation) {
  System sys = testing::make_column_system(5, kP);
  sys.seed_entity_unchecked(CellId{3, 3}, Vec2{3.5, 3.5});
  sys.seed_entity_unchecked(CellId{3, 3}, Vec2{3.55, 3.55});
  NoFailures none;
  Simulator sim(sys, none);
  SafetyMonitor safety;
  sim.add_observer(safety);
  sim.run(1);
  EXPECT_FALSE(safety.clean());
  EXPECT_NE(safety.report().find("Safe"), std::string::npos);
}

TEST(RoutingStabilizationMonitor, DetectsConvergenceRound) {
  System sys = testing::make_column_system(8, kP);
  NoFailures none;
  Simulator sim(sys, none);
  RoutingStabilizationMonitor monitor;
  sim.add_observer(monitor);
  sim.run(50);
  ASSERT_TRUE(monitor.stabilized_at().has_value());
  // Fresh 8×8 grid converges within the Manhattan diameter (13) + 1.
  EXPECT_LE(*monitor.stabilized_at(), 14u);
}

TEST(RoutingStabilizationMonitor, ResetsOnTopologyChange) {
  System sys = testing::make_column_system(6, kP);
  ScriptedFailures failures({{30, CellId{1, 3}, false}});
  Simulator sim(sys, failures);
  RoutingStabilizationMonitor monitor;
  sim.add_observer(monitor);
  sim.run(200);
  ASSERT_TRUE(monitor.stabilized_at().has_value());
  EXPECT_GE(*monitor.stabilized_at(), 30u);
}

TEST(BlockingStats, CountsMovesAndBlocks) {
  System sys = testing::make_column_system(6, kP);
  NoFailures none;
  Simulator sim(sys, none);
  BlockingStats stats;
  sim.add_observer(stats);
  sim.run(500);
  EXPECT_EQ(stats.rounds(), 500u);
  EXPECT_GT(stats.total_moves(), 0u);
  EXPECT_GT(stats.total_blocks(), 0u);  // saturating source must block sometimes
  EXPECT_GT(stats.mean_moving_per_round(), 0.0);
  EXPECT_GT(stats.mean_blocked_per_round(), 0.0);
}

TEST(OccupancyTracker, TracksPopulationAndPeak) {
  System sys = testing::make_column_system(6, kP);
  NoFailures none;
  Simulator sim(sys, none);
  OccupancyTracker occ;
  sim.add_observer(occ);
  sim.run(500);
  EXPECT_EQ(occ.population().count(), 500u);
  EXPECT_GT(occ.population().mean(), 0.0);
  EXPECT_GE(occ.peak_cell_occupancy(), 1u);
  // d = 0.3 on a unit cell: at most a 4-per-axis lattice even in theory.
  EXPECT_LE(occ.peak_cell_occupancy(), 16u);
}

TEST(ProgressTracker, MeasuresLatencies) {
  System sys = testing::make_column_system(6, kP);
  NoFailures none;
  Simulator sim(sys, none);
  ProgressTracker progress;
  sim.add_observer(progress);
  sim.run(1200);
  EXPECT_GT(progress.completed(), 0u);
  // 5 cells of travel at v = 0.1 with signaling overhead: latency must be
  // at least 1/v per cell traversed (≥ ~40 rounds) and finite.
  EXPECT_GT(progress.latency().mean(), 30.0);
  EXPECT_LT(progress.latency().mean(), 2000.0);
  EXPECT_LE(progress.latency().min(), progress.latency().mean());
}

TEST(ProgressTracker, InFlightMatchesSystemPopulation) {
  System sys = testing::make_column_system(6, kP);
  NoFailures none;
  Simulator sim(sys, none);
  ProgressTracker progress;
  sim.add_observer(progress);
  sim.run(700);
  EXPECT_EQ(progress.in_flight(), sys.entity_count());
}

TEST(Simulator, RunUntilStopsEarly) {
  System sys = testing::make_column_system(6, kP);
  NoFailures none;
  Simulator sim(sys, none);
  const bool fired = sim.run_until(
      [](const System& s) { return s.total_arrivals() >= 3; }, 5000);
  EXPECT_TRUE(fired);
  EXPECT_EQ(sys.total_arrivals(), 3u);
}

TEST(Simulator, RunUntilRespectsMaxRounds) {
  System sys = testing::make_column_system(6, kP);
  NoFailures none;
  Simulator sim(sys, none);
  const bool fired = sim.run_until(
      [](const System&) { return false; }, 50);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sys.round(), 50u);
}

}  // namespace
}  // namespace cellflow
