// Tests for the Figure-1-style ASCII renderer.
#include "sim/render.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace cellflow {
namespace {

const Params kP(0.2, 0.1, 0.1);

TEST(Render, MarksTargetSourceAndFailed) {
  System sys = testing::make_column_system(4, kP);
  sys.fail(CellId{3, 3});
  const std::string art = render_ascii(sys);
  EXPECT_NE(art.find('T'), std::string::npos);
  EXPECT_NE(art.find('S'), std::string::npos);
  EXPECT_NE(art.find('X'), std::string::npos);
}

TEST(Render, ShowsEntityCounts) {
  System sys = testing::make_closed_system(3, kP, CellId{2, 2});
  sys.seed_entity(CellId{0, 0}, Vec2{0.2, 0.2});
  sys.seed_entity(CellId{0, 0}, Vec2{0.6, 0.2});
  const std::string art = render_ascii(sys);
  EXPECT_NE(art.find(" 2"), std::string::npos);
}

TEST(Render, EmptyCellsShowDot) {
  const System sys = testing::make_column_system(3, kP);
  const std::string art = render_ascii(sys);
  EXPECT_NE(art.find(" ."), std::string::npos);
}

TEST(Render, ArrowsAppearAfterRouting) {
  System sys = testing::make_column_system(4, kP);
  const std::string before = render_ascii(sys);
  testing::run_rounds(sys, 10);
  const std::string after = render_ascii(sys);
  // Routing converged: next pointers exist, rendered as arrows.
  EXPECT_EQ(before.find('^'), std::string::npos);
  EXPECT_NE(after.find('^'), std::string::npos);
}

TEST(Render, DistModeShowsNumbersAndInfinity) {
  System sys = testing::make_column_system(4, kP);
  sys.fail(CellId{0, 0});
  testing::run_rounds(sys, 10);
  RenderOptions opts;
  opts.show_dist = true;
  const std::string art = render_ascii(sys, opts);
  EXPECT_NE(art.find(" 0"), std::string::npos);   // the target
  EXPECT_NE(art.find(" ~"), std::string::npos);   // the failed cell
}

TEST(Render, TopRowIsHighestJ) {
  const System sys = testing::make_column_system(3, kP);
  const std::string art = render_ascii(sys);
  // First rendered line is row j = 2, labeled "2".
  EXPECT_EQ(art.substr(0, 1), "2");
}

TEST(RenderSummary, MentionsAllCounters) {
  System sys = testing::make_column_system(4, kP);
  sys.fail(CellId{3, 3});
  testing::run_rounds(sys, 120);
  const std::string s = render_summary(sys);
  EXPECT_NE(s.find("round 120"), std::string::npos);
  EXPECT_NE(s.find("1/16 cells failed"), std::string::npos);
  EXPECT_NE(s.find("arrived"), std::string::npos);
}

}  // namespace
}  // namespace cellflow
