// Tests for Lemma 9's fairness machinery: every nonempty predecessor is
// granted a signal infinitely often — under the fair policies. The unfair
// lowest-id policy demonstrably starves a third competitor, which is the
// negative result motivating the fairness requirement on `choose`.
#include <gtest/gtest.h>

#include <map>

#include "core/choose.hpp"
#include "failure/failure_model.hpp"
#include "grid/path.hpp"
#include "helpers.hpp"

namespace cellflow {
namespace {

const Params kP(0.2, 0.1, 0.1);

// A 3-way merge carved into a 4×4 grid: ⟨0,1⟩, ⟨1,0⟩, ⟨2,1⟩ all feed the
// merge cell ⟨1,1⟩, which drains north to the target ⟨1,3⟩.
struct MergeHarness {
  explicit MergeHarness(const std::string& policy) : sys(make(policy)) {
    for (const CellId id : sys.grid().all_cells()) {
      if (!keep(id)) sys.fail(id);
    }
  }

  static bool keep(CellId id) {
    return id == CellId{0, 1} || id == CellId{1, 0} || id == CellId{2, 1} ||
           id == CellId{1, 1} || id == CellId{1, 2} || id == CellId{1, 3};
  }

  static System make(const std::string& policy) {
    SystemConfig cfg;
    cfg.side = 4;
    cfg.params = kP;
    cfg.sources = {CellId{0, 1}, CellId{1, 0}, CellId{2, 1}};
    cfg.target = CellId{1, 3};
    return System(cfg, make_choose_policy(policy, 7));
  }

  // Runs `rounds` rounds and tallies which predecessor ⟨1,1⟩ granted to.
  std::map<CellId, int> run_and_count_grants(std::uint64_t rounds) {
    std::map<CellId, int> grants;
    for (std::uint64_t k = 0; k < rounds; ++k) {
      sys.update();
      if (const OptCellId s = sys.cell(CellId{1, 1}).signal) ++grants[*s];
    }
    return grants;
  }

  System sys;
};

TEST(Fairness, RoundRobinServesAllThreeCompetitors) {
  MergeHarness h("round-robin");
  const auto grants = h.run_and_count_grants(1500);
  EXPECT_GT(grants.count(CellId{0, 1}) ? grants.at(CellId{0, 1}) : 0, 20);
  EXPECT_GT(grants.count(CellId{1, 0}) ? grants.at(CellId{1, 0}) : 0, 20);
  EXPECT_GT(grants.count(CellId{2, 1}) ? grants.at(CellId{2, 1}) : 0, 20);
  EXPECT_GT(h.sys.total_arrivals(), 10u);
}

TEST(Fairness, RandomChooseServesAllThreeCompetitors) {
  MergeHarness h("random");
  const auto grants = h.run_and_count_grants(1500);
  EXPECT_GT(grants.count(CellId{0, 1}) ? grants.at(CellId{0, 1}) : 0, 10);
  EXPECT_GT(grants.count(CellId{1, 0}) ? grants.at(CellId{1, 0}) : 0, 10);
  EXPECT_GT(grants.count(CellId{2, 1}) ? grants.at(CellId{2, 1}) : 0, 10);
}

TEST(Fairness, LowestIdStarvesThirdCompetitor) {
  // With three persistent competitors, the rotation rule
  // `token := choose(NEPrev \ {token})` under lowest-id alternates between
  // the two smallest ids and never reaches ⟨2,1⟩. This is the documented
  // unfairness: Lemma 9 requires the choice to be fair.
  MergeHarness h("lowest-id");
  const auto grants = h.run_and_count_grants(1500);
  const int starving =
      grants.count(CellId{2, 1}) ? grants.at(CellId{2, 1}) : 0;
  const int a = grants.count(CellId{0, 1}) ? grants.at(CellId{0, 1}) : 0;
  const int b = grants.count(CellId{1, 0}) ? grants.at(CellId{1, 0}) : 0;
  EXPECT_GT(a, 20);
  EXPECT_GT(b, 20);
  // ⟨2,1⟩ may get a handful of grants before all queues fill, then
  // starves. Its share must be dramatically below the served pair.
  EXPECT_LT(starving, a / 10 + 5);
  // And its cell backs up: still holding entities at the end.
  EXPECT_FALSE(h.sys.cell(CellId{2, 1}).members.empty());
}

TEST(Fairness, BlockedGrantRetriesSameNeighbor) {
  // Direct System-level check of Figure 5 line 14: while the strip stays
  // occupied the token does not rotate away from the blocked neighbor.
  SystemConfig cfg;
  cfg.side = 3;
  cfg.params = kP;
  cfg.sources = {};
  cfg.target = CellId{2, 0};  // ⟨0,0⟩ → ⟨1,0⟩ → target, straight east
  System sys(cfg, nullptr, std::make_unique<NullSource>());
  // ⟨0,0⟩ holds an entity and routes east to ⟨1,0⟩; ⟨1,0⟩'s west strip is
  // occupied by a *frozen* blocker: put the blocker in and fail… no —
  // failed cells don't signal at all. Instead occupy ⟨1,0⟩'s west strip
  // with an entity that itself cannot move (⟨1,0⟩ routes east, and its
  // own forward strip in ⟨2,0⟩ is kept full by another blocked chain).
  // Simplest deterministic construction: entity in ⟨1,0⟩ sitting in the
  // west strip; ⟨1,0⟩ is granted eastward movement only after ⟨2,0⟩
  // grants, which happens immediately — so instead verify the transient:
  // for as long as the blocker is present, signal_{1,0} = ⊥ and
  // token_{1,0} = ⟨0,0⟩.
  sys.seed_entity(CellId{0, 0}, Vec2{0.5, 0.5});
  sys.seed_entity(CellId{1, 0}, Vec2{1.2, 0.5});  // west strip (needs ≥ 1.4)
  sys.update();  // routing + first signal round
  // After round 1: ⟨1,0⟩ has token ⟨0,0⟩ (only candidate). Its west strip
  // is occupied, so the grant is withheld.
  const CellState& merge = sys.cell(CellId{1, 0});
  if (merge.token == OptCellId(CellId{0, 0})) {
    EXPECT_EQ(merge.signal, OptCellId{});
  }
  // The blocker drains east within a few rounds; then the waiting
  // neighbor must be served promptly.
  std::uint64_t waited = 0;
  while (sys.cell(CellId{1, 0}).signal != OptCellId(CellId{0, 0}) &&
         waited < 100) {
    sys.update();
    ++waited;
  }
  EXPECT_LT(waited, 100u);
}

}  // namespace
}  // namespace cellflow
