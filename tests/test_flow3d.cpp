// Tests for the 3-D extension (§V): topology, axis-generic strips,
// routing convergence, safety under load and failures, progress through
// 3-D paths, and consistency with the 2-D system on planar instances.
#include "flow3d/system3.hpp"

#include <gtest/gtest.h>

#include "flow3d/predicates3.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

const Params kP(0.2, 0.1, 0.1);  // d = 0.3

System3 tower(int nx = 4, int ny = 4, int nz = 6) {
  System3Config cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.nz = nz;
  cfg.params = kP;
  cfg.sources = {CellId3{1, 1, 0}};
  cfg.target = CellId3{1, 1, nz - 1};
  return System3(cfg);
}

TEST(Grid3, IndexRoundTripAndBounds) {
  const Grid3 g(3, 4, 5);
  EXPECT_EQ(g.cell_count(), 60u);
  for (std::size_t k = 0; k < g.cell_count(); ++k)
    EXPECT_EQ(g.index_of(g.id_of(k)), k);
  EXPECT_TRUE(g.contains(CellId3{2, 3, 4}));
  EXPECT_FALSE(g.contains(CellId3{3, 0, 0}));
  EXPECT_FALSE(g.contains(CellId3{0, 0, -1}));
  EXPECT_THROW(Grid3(0, 1, 1), ContractViolation);
}

TEST(Grid3, InteriorCellHasSixNeighbors) {
  const Grid3 g(4, 4, 4);
  EXPECT_EQ(g.neighbors(CellId3{1, 1, 1}).size(), 6u);
  EXPECT_EQ(g.neighbors(CellId3{0, 0, 0}).size(), 3u);  // corner
  EXPECT_EQ(g.neighbors(CellId3{0, 1, 1}).size(), 5u);  // face
  EXPECT_EQ(g.neighbors(CellId3{0, 0, 1}).size(), 4u);  // edge
}

TEST(Grid3, NeighborRelationAndDirections) {
  const Grid3 g(4, 4, 4);
  EXPECT_TRUE(g.are_neighbors(CellId3{1, 1, 1}, CellId3{1, 1, 2}));
  EXPECT_FALSE(g.are_neighbors(CellId3{1, 1, 1}, CellId3{1, 2, 2}));
  EXPECT_FALSE(g.are_neighbors(CellId3{1, 1, 1}, CellId3{1, 1, 1}));
  const Direction3 up = g.direction_between(CellId3{1, 1, 1}, CellId3{1, 1, 2});
  EXPECT_EQ(up.axis, 2);
  EXPECT_EQ(up.sign, 1);
  for (const CellId3 a : g.all_cells())
    for (const CellId3 b : g.neighbors(a)) {
      const Direction3 d = g.direction_between(a, b);
      EXPECT_EQ(g.neighbor(a, d), OptCellId3(b));
    }
}

TEST(Grid3, ManhattanDistance) {
  const Grid3 g(8, 8, 8);
  EXPECT_EQ(g.manhattan(CellId3{0, 0, 0}, CellId3{7, 7, 7}), 21);
  EXPECT_EQ(g.manhattan(CellId3{1, 2, 3}, CellId3{1, 2, 3}), 0);
}

TEST(EntryStrip3, AxisGenericConditions) {
  const CellId3 self{2, 3, 4};
  const Entity3 blocker_up{EntityId{0}, Vec3{2.5, 3.5, 4.75}};
  const Entity3 ok_up{EntityId{1}, Vec3{2.5, 3.5, 4.55}};
  // Up (+z): needs pz + l/2 ≤ 5 − d = 4.7 → pz ≤ 4.6 (4.55 keeps a
  // margin clear of the floating-point representation of d).
  EXPECT_FALSE(entry_strip_clear3(self, CellId3{2, 3, 5},
                                  std::vector<Entity3>{blocker_up}, kP));
  EXPECT_TRUE(entry_strip_clear3(self, CellId3{2, 3, 5},
                                 std::vector<Entity3>{ok_up}, kP));
  // Down (−z): needs pz − l/2 ≥ 4 + d → pz ≥ 4.4.
  EXPECT_TRUE(entry_strip_clear3(self, CellId3{2, 3, 3},
                                 std::vector<Entity3>{blocker_up}, kP));
  // The same entity evaluated against the ±x faces.
  const Entity3 x_blocker{EntityId{2}, Vec3{2.05, 3.5, 4.5}};
  EXPECT_FALSE(entry_strip_clear3(self, CellId3{1, 3, 4},
                                  std::vector<Entity3>{x_blocker}, kP));
  EXPECT_TRUE(entry_strip_clear3(self, CellId3{3, 3, 4},
                                 std::vector<Entity3>{x_blocker}, kP));
  EXPECT_THROW((void)entry_strip_clear3(self, CellId3{3, 4, 4}, {}, kP),
               ContractViolation);
}

TEST(System3, InitialStateMatchesFigure3) {
  System3 sys = tower();
  for (const CellId3 id : sys.grid().all_cells()) {
    const CellState3& c = sys.cell(id);
    EXPECT_TRUE(c.members.empty());
    EXPECT_FALSE(c.failed);
    if (id == sys.target()) {
      EXPECT_EQ(c.dist, Dist::zero());
    } else {
      EXPECT_TRUE(c.dist.is_infinite());
    }
  }
}

TEST(System3, RoutingConvergesToBfs) {
  System3 sys = tower();
  // Manhattan diameter of 4×4×6 from ⟨1,1,5⟩: 3+3+5 = 11.
  for (int k = 0; k < 14; ++k) sys.update();
  const auto rho = sys.reference_distances();
  for (const CellId3 id : sys.grid().all_cells())
    EXPECT_EQ(sys.cell(id).dist, rho[sys.grid().index_of(id)])
        << to_string(id);
}

TEST(System3, RoutingRecoversAroundFailedSlab) {
  System3 sys = tower(4, 4, 6);
  for (int k = 0; k < 14; ++k) sys.update();
  // Fail an entire z = 3 slab except one hole.
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y)
      if (!(x == 3 && y == 3)) sys.fail(CellId3{x, y, 3});
  for (int k = 0; k < 100; ++k) sys.update();
  const auto rho = sys.reference_distances();
  for (const CellId3 id : sys.grid().all_cells()) {
    if (rho[sys.grid().index_of(id)].is_finite()) {
      EXPECT_EQ(sys.cell(id).dist, rho[sys.grid().index_of(id)]);
    }
  }
  // The column below the slab must detour through the ⟨3,3,3⟩ hole.
  EXPECT_GT(sys.cell(CellId3{1, 1, 0}).dist.hops(), 5u);
}

TEST(System3, EntityClimbsTowerAndIsConsumed) {
  System3 sys = tower();
  // No sources interfering: use a separate closed config.
  System3Config cfg;
  cfg.nx = 3;
  cfg.ny = 3;
  cfg.nz = 5;
  cfg.params = kP;
  cfg.sources = {};
  cfg.target = CellId3{1, 1, 4};
  System3 closed(cfg);
  closed.seed_entity(CellId3{1, 1, 0}, Vec3{1.5, 1.5, 0.1});
  std::uint64_t rounds = 0;
  while (closed.total_arrivals() < 1 && rounds < 500) {
    closed.update();
    ++rounds;
  }
  EXPECT_EQ(closed.total_arrivals(), 1u);
  EXPECT_EQ(closed.entity_count(), 0u);
}

TEST(System3, TransferPlacesFlushOnZFace) {
  System3Config cfg;
  cfg.nx = 2;
  cfg.ny = 2;
  cfg.nz = 3;
  cfg.params = kP;
  cfg.sources = {};
  cfg.target = CellId3{0, 0, 2};
  System3 sys(cfg);
  const EntityId e = sys.seed_entity(CellId3{0, 0, 0}, Vec3{0.5, 0.5, 0.85});
  for (int k = 0; k < 60; ++k) {
    sys.update();
    if (const Entity3* p = sys.cell(CellId3{0, 0, 1}).find(e)) {
      EXPECT_DOUBLE_EQ(p->center.z, 1.1);
      EXPECT_DOUBLE_EQ(p->center.x, 0.5);
      EXPECT_DOUBLE_EQ(p->center.y, 0.5);
      return;
    }
  }
  FAIL() << "entity never crossed the z face";
}

TEST(System3, SaturatingSourceDeliversThroughput) {
  System3 sys = tower();
  for (int k = 0; k < 1500; ++k) sys.update();
  EXPECT_GT(sys.total_arrivals(), 50u);
  EXPECT_EQ(sys.entity_count(),
            sys.total_injected() - sys.total_arrivals());
}

TEST(System3, SeedEntityValidation) {
  System3 sys = tower();
  sys.seed_entity(CellId3{2, 2, 2}, Vec3{2.5, 2.5, 2.5});
  // Too close on all three axes.
  EXPECT_THROW(
      (void)sys.seed_entity(CellId3{2, 2, 2}, Vec3{2.6, 2.6, 2.6}),
      ContractViolation);
  // Separated by ≥ d along z only: legal.
  EXPECT_NO_THROW(
      (void)sys.seed_entity(CellId3{2, 2, 2}, Vec3{2.5, 2.5, 2.85}));
  // Sticking out of the cube.
  EXPECT_THROW(
      (void)sys.seed_entity(CellId3{3, 3, 3}, Vec3{3.05, 3.5, 3.5}),
      ContractViolation);
}

class System3Safety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(System3Safety, OraclesHoldUnderRandomFailures) {
  System3 sys = tower(4, 4, 6);
  Xoshiro256 rng(GetParam());
  for (int k = 0; k < 800; ++k) {
    // Inline fail/recover environment (pf = 0.02, pr = 0.1).
    for (const CellId3 id : sys.grid().all_cells()) {
      if (sys.cell(id).failed) {
        if (rng.bernoulli(0.1)) sys.recover(id);
      } else if (rng.bernoulli(0.02)) {
        sys.fail(id);
      }
    }
    sys.update();
    const auto vs = check_all3(sys);
    ASSERT_TRUE(vs.empty()) << to_string(vs.front()) << " round " << k;
  }
  EXPECT_GT(sys.total_injected(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, System3Safety,
                         ::testing::Values(1u, 2u, 3u));

TEST(System3, HPredicateHoldsAfterEveryRound) {
  // Post-round signals are exactly the post-Signal values (Move does not
  // touch signal), but entities have moved; H may legitimately fail then.
  // What must hold after every round: Safe + bounds + disjoint. H is
  // checked in the 2-D suite via the phase hook; here we check the
  // conservative all3 set plus H right after construction grants.
  System3 sys = tower();
  for (int k = 0; k < 400; ++k) {
    sys.update();
    ASSERT_TRUE(check_all3(sys).empty());
  }
}

TEST(System3, PlanarInstanceMatches2DThroughputClosely) {
  // A 4×1×8 box is the 2-D 4×8 strip; the 3-D implementation must behave
  // like the 2-D one on it. Compare against the known 2-D straight-column
  // saturated throughput for these parameters (v/l/rs as Fig. 7 with
  // v = 0.1): ~0.0816 entities/round.
  System3Config cfg;
  cfg.nx = 4;
  cfg.ny = 1;
  cfg.nz = 8;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {CellId3{1, 0, 0}};
  cfg.target = CellId3{1, 0, 7};
  System3 sys(cfg);
  for (int k = 0; k < 2500; ++k) sys.update();
  const double thr =
      static_cast<double>(sys.total_arrivals()) / 2500.0;
  EXPECT_NEAR(thr, 0.0816, 0.01);
}

TEST(System3, FrozenWhenWalledIn) {
  System3Config cfg;
  cfg.nx = 3;
  cfg.ny = 3;
  cfg.nz = 3;
  cfg.params = kP;
  cfg.sources = {};
  cfg.target = CellId3{2, 2, 2};
  System3 sys(cfg);
  const EntityId e = sys.seed_entity(CellId3{0, 0, 0}, Vec3{0.5, 0.5, 0.5});
  // Fail the entire shell around ⟨0,0,0⟩.
  sys.fail(CellId3{1, 0, 0});
  sys.fail(CellId3{0, 1, 0});
  sys.fail(CellId3{0, 0, 1});
  for (int k = 0; k < 100; ++k) sys.update();
  const Entity3* p = sys.cell(CellId3{0, 0, 0}).find(e);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->center, (Vec3{0.5, 0.5, 0.5}));
  EXPECT_EQ(sys.total_arrivals(), 0u);
}

}  // namespace
}  // namespace cellflow
