// Unit tests for the Move function (Figure 6): displacement, boundary
// crossing, and entry placement in all four directions.
#include "core/move.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace cellflow {
namespace {

// l = 0.2, rs = 0.1, v = 0.1; cell ⟨2,3⟩ spans [2,3]×[3,4].
const Params kP(0.2, 0.1, 0.1);
const CellId kSelf{2, 3};

Entity at(double x, double y, std::uint64_t id = 0) {
  return Entity{EntityId{id}, Vec2{x, y}};
}

TEST(CrossesBoundary, EastRequiresEdgePastLine) {
  // Crossing east iff px + l/2 > 3, i.e. px > 2.9.
  EXPECT_FALSE(crosses_boundary(kSelf, CellId{3, 3}, at(2.9, 3.5), kP));
  EXPECT_TRUE(crosses_boundary(kSelf, CellId{3, 3}, at(2.901, 3.5), kP));
}

TEST(CrossesBoundary, WestRequiresEdgeBelowLine) {
  EXPECT_FALSE(crosses_boundary(kSelf, CellId{1, 3}, at(2.1, 3.5), kP));
  EXPECT_TRUE(crosses_boundary(kSelf, CellId{1, 3}, at(2.099, 3.5), kP));
}

TEST(CrossesBoundary, NorthAndSouth) {
  EXPECT_TRUE(crosses_boundary(kSelf, CellId{2, 4}, at(2.5, 3.95), kP));
  EXPECT_FALSE(crosses_boundary(kSelf, CellId{2, 4}, at(2.5, 3.9), kP));
  EXPECT_TRUE(crosses_boundary(kSelf, CellId{2, 2}, at(2.5, 3.05), kP));
  EXPECT_FALSE(crosses_boundary(kSelf, CellId{2, 2}, at(2.5, 3.1), kP));
}

TEST(CrossesBoundary, NonNeighborViolatesContract) {
  EXPECT_THROW((void)crosses_boundary(kSelf, CellId{4, 3}, at(2.5, 3.5), kP),
               ContractViolation);
}

TEST(PlaceAtEntry, FlushPlacementAllDirections) {
  // Eastward into ⟨3,3⟩: px := 3 + l/2 = 3.1; py preserved.
  Entity e = place_at_entry(kSelf, CellId{3, 3}, at(3.05, 3.62), kP);
  EXPECT_DOUBLE_EQ(e.center.x, 3.1);
  EXPECT_DOUBLE_EQ(e.center.y, 3.62);
  // Westward into ⟨1,3⟩: px := 1 + 1 − l/2 = 1.9.
  e = place_at_entry(kSelf, CellId{1, 3}, at(1.95, 3.62), kP);
  EXPECT_DOUBLE_EQ(e.center.x, 1.9);
  // Northward into ⟨2,4⟩: py := 4 + l/2 = 4.1; px preserved.
  e = place_at_entry(kSelf, CellId{2, 4}, at(2.33, 4.05), kP);
  EXPECT_DOUBLE_EQ(e.center.y, 4.1);
  EXPECT_DOUBLE_EQ(e.center.x, 2.33);
  // Southward into ⟨2,2⟩: py := 2 + 1 − l/2 = 2.9.
  e = place_at_entry(kSelf, CellId{2, 2}, at(2.33, 2.95), kP);
  EXPECT_DOUBLE_EQ(e.center.y, 2.9);
}

TEST(PlaceAtEntry, ResultSatisfiesInvariant1Bounds) {
  // Flush placement leaves the entity wholly inside the destination cell.
  const Entity e = place_at_entry(kSelf, CellId{3, 3}, at(3.02, 3.5), kP);
  const double half = kP.entity_length() / 2.0;
  EXPECT_GE(e.center.x - half, 3.0);
  EXPECT_LE(e.center.x + half, 4.0);
}

TEST(MoveStep, AdvancesAllEntitiesByV) {
  const auto r = move_step(kSelf, CellId{3, 3},
                           {at(2.3, 3.5, 1), at(2.6, 3.5, 2)}, kP);
  ASSERT_EQ(r.staying.size(), 2u);
  EXPECT_TRUE(r.crossed.empty());
  EXPECT_DOUBLE_EQ(r.staying[0].center.x, 2.4);
  EXPECT_DOUBLE_EQ(r.staying[1].center.x, 2.7);
  EXPECT_DOUBLE_EQ(r.staying[0].center.y, 3.5);  // perpendicular untouched
}

TEST(MoveStep, NegativeDirections) {
  const auto west = move_step(kSelf, CellId{1, 3}, {at(2.5, 3.5)}, kP);
  EXPECT_DOUBLE_EQ(west.staying[0].center.x, 2.4);
  const auto south = move_step(kSelf, CellId{2, 2}, {at(2.5, 3.5)}, kP);
  EXPECT_DOUBLE_EQ(south.staying[0].center.y, 3.4);
}

TEST(MoveStep, CrosserIsExtractedAndPlaced) {
  // px = 2.85 + 0.1 = 2.95; edge 2.95 + 0.1 = 3.05 > 3 → crossed east.
  const auto r = move_step(kSelf, CellId{3, 3}, {at(2.85, 3.5, 7)}, kP);
  EXPECT_TRUE(r.staying.empty());
  ASSERT_EQ(r.crossed.size(), 1u);
  EXPECT_EQ(r.crossed[0].id, EntityId{7});
  EXPECT_DOUBLE_EQ(r.crossed[0].center.x, 3.1);  // flush at entry
  EXPECT_DOUBLE_EQ(r.crossed[0].center.y, 3.5);
}

TEST(MoveStep, ExactTouchDoesNotCross) {
  // px = 2.8 + 0.1 = 2.9; edge exactly at 3.0 → strict '>' fails, stays.
  const auto r = move_step(kSelf, CellId{3, 3}, {at(2.8, 3.5)}, kP);
  ASSERT_EQ(r.staying.size(), 1u);
  EXPECT_DOUBLE_EQ(r.staying[0].center.x, 2.9);
}

TEST(MoveStep, AbreastEntitiesCrossTogetherKeepingSeparation) {
  // Two entities at the same x, y-separated by d = 0.3: both cross east
  // simultaneously, both land flush, y separation preserved (proof of
  // Theorem 5 relies on this).
  const auto r = move_step(kSelf, CellId{3, 3},
                           {at(2.95, 3.3, 1), at(2.95, 3.6, 2)}, kP);
  ASSERT_EQ(r.crossed.size(), 2u);
  EXPECT_DOUBLE_EQ(r.crossed[0].center.x, r.crossed[1].center.x);
  EXPECT_NEAR(std::abs(r.crossed[0].center.y - r.crossed[1].center.y), 0.3,
              1e-12);
}

TEST(MoveStep, MixedStayAndCross) {
  const auto r = move_step(
      kSelf, CellId{2, 4}, {at(2.5, 3.95, 1), at(2.5, 3.6, 2)}, kP);
  ASSERT_EQ(r.staying.size(), 1u);
  ASSERT_EQ(r.crossed.size(), 1u);
  EXPECT_EQ(r.crossed[0].id, EntityId{1});
  EXPECT_EQ(r.staying[0].id, EntityId{2});
  EXPECT_DOUBLE_EQ(r.crossed[0].center.y, 4.1);
}

TEST(MoveStep, EmptyCellNoEffect) {
  const auto r = move_step(kSelf, CellId{3, 3}, {}, kP);
  EXPECT_TRUE(r.staying.empty());
  EXPECT_TRUE(r.crossed.empty());
}

TEST(MoveStep, NonNeighborViolatesContract) {
  EXPECT_THROW((void)move_step(kSelf, CellId{4, 4}, {}, kP),
               ContractViolation);
  EXPECT_THROW((void)move_step(kSelf, kSelf, {}, kP), ContractViolation);
}

// Property: one move_step displaces every surviving entity by exactly v
// along the motion axis and 0 along the other, for all four directions.
class MoveDisplacement : public ::testing::TestWithParam<CellId> {};

TEST_P(MoveDisplacement, ExactlyV) {
  const CellId toward = GetParam();
  const Entity start = at(2.5, 3.5);
  const auto r = move_step(kSelf, toward, {start}, kP);
  ASSERT_EQ(r.staying.size(), 1u);
  const Vec2 delta = r.staying[0].center - start.center;
  EXPECT_NEAR(l1_distance(Vec2{}, delta), kP.velocity(), 1e-12);
  EXPECT_TRUE(delta.x == 0.0 || delta.y == 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllDirections, MoveDisplacement,
                         ::testing::Values(CellId{3, 3}, CellId{1, 3},
                                           CellId{2, 4}, CellId{2, 2}));

}  // namespace
}  // namespace cellflow
