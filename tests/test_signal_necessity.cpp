// The paper (§I): "This permission-to-move policy turns out to be
// necessary, because movement of neighboring cells may otherwise result
// in a violation of safety in the signaling cell." We make that claim
// executable: the kAlwaysGrant ablation (identical protocol minus the
// entry-strip check) violates Theorem 5 under load, while the real rule
// never does — on the same workloads, same seeds.
#include <gtest/gtest.h>

#include "core/choose.hpp"
#include "core/predicates.hpp"
#include "failure/failure_model.hpp"
#include "helpers.hpp"
#include "sim/observers.hpp"
#include "sim/simulator.hpp"

namespace cellflow {
namespace {

const Params kP(0.25, 0.05, 0.1);

SystemConfig column_config(SignalRule rule) {
  SystemConfig cfg;
  cfg.side = 6;
  cfg.params = kP;
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 5};
  cfg.signal_rule = rule;
  return cfg;
}

TEST(SignalNecessity, AlwaysGrantViolatesSafetyUnderLoad) {
  System sys{column_config(SignalRule::kAlwaysGrant)};
  NoFailures none;
  Simulator sim(sys, none);
  SafetyMonitor safety;
  sim.add_observer(safety);
  sim.run(600);
  EXPECT_FALSE(safety.clean())
      << "the broken grant rule was expected to violate Theorem 5";
}

TEST(SignalNecessity, BlockingRuleIsSafeOnSameWorkload) {
  System sys{column_config(SignalRule::kBlocking)};
  NoFailures none;
  Simulator sim(sys, none);
  SafetyMonitor safety;
  sim.add_observer(safety);
  sim.run(600);
  EXPECT_TRUE(safety.clean()) << safety.report();
}

TEST(SignalNecessity, ViolationIsInTheSignalingCell) {
  // The paper pinpoints *where* safety breaks: in the granting cell, when
  // an entity transfers into a strip that still holds a resident. Check
  // the first violation is a Safe/footprint violation (entities too
  // close within one cell), not some other artifact.
  System sys{column_config(SignalRule::kAlwaysGrant)};
  NoFailures none;
  Simulator sim(sys, none);
  SafetyMonitor safety;
  sim.add_observer(safety);
  sim.run(600);
  ASSERT_FALSE(safety.clean());
  const Violation& first = safety.violations().front();
  EXPECT_TRUE(first.predicate == "Safe" || first.predicate == "H" ||
              first.predicate == "FootprintGap" ||
              first.predicate == "FootprintOverlap")
      << first.predicate;
}

// The deterministic counterexample needs *contention*: if every cell is
// granted every round, all entities advance in lockstep and gaps are
// preserved even without the strip check. The violation arises when the
// receiving cell is stalled (its own grant went to a competitor) while a
// predecessor pushes an entity in. Topology: ⟨0,0⟩ and ⟨1,1⟩ feed
// ⟨1,0⟩, which competes with ⟨2,1⟩ for the target ⟨2,0⟩'s grant.
System make_counterexample(SignalRule rule) {
  SystemConfig cfg;
  cfg.side = 3;
  cfg.params = Params(0.2, 0.1, 0.1);  // d = 0.3
  cfg.sources = {};
  cfg.target = CellId{2, 0};
  cfg.signal_rule = rule;
  System sys(cfg, nullptr, std::make_unique<NullSource>());
  for (const CellId id : sys.grid().all_cells()) {
    const bool keep = id == CellId{0, 0} || id == CellId{1, 0} ||
                      id == CellId{2, 0} || id == CellId{1, 1} ||
                      id == CellId{2, 1};
    if (!keep) sys.fail(id);
  }
  // Resident inside ⟨1,0⟩'s west entry strip; pushers behind it and on
  // the competing streams that stall ⟨1,0⟩ and occupy its token.
  sys.seed_entity(CellId{1, 0}, Vec2{1.2, 0.5});
  sys.seed_entity(CellId{0, 0}, Vec2{0.9, 0.5});
  sys.seed_entity(CellId{1, 1}, Vec2{1.5, 1.5});
  sys.seed_entity(CellId{2, 1}, Vec2{2.5, 1.5});
  return sys;
}

TEST(SignalNecessity, MinimalMergeCounterexample) {
  System sys = make_counterexample(SignalRule::kAlwaysGrant);
  bool violated = false;
  for (int k = 0; k < 40 && !violated; ++k) {
    sys.update();
    violated = check_safe(sys).has_value();
  }
  EXPECT_TRUE(violated);
}

TEST(SignalNecessity, BlockingRuleSurvivesSameCounterexample) {
  System sys = make_counterexample(SignalRule::kBlocking);
  for (int k = 0; k < 400; ++k) {
    sys.update();
    ASSERT_FALSE(check_safe(sys).has_value()) << "round " << k;
  }
  // And every entity eventually arrives anyway — blocking costs time,
  // not progress.
  EXPECT_EQ(sys.total_arrivals(), 4u);
}

}  // namespace
}  // namespace cellflow
