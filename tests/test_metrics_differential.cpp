// Differential pinning of the metrics determinism contract:
//
//   1. Every metric count is bit-identical across the serial engine and
//      the parallel engine at 1/2/4/8 threads (per-shard tallies merged
//      in shard order — the same discipline as the event buffers).
//   2. The shared-variable System and the message-passing MessageSystem
//      report identical protocol counts on equivalent executions —
//      extending the state-equivalence theorem of test_msg_system.cpp to
//      the observability layer.
//
// Comparison goes through to_prometheus(), which is byte-deterministic
// over a snapshot, so a single string EXPECT covers every family, series,
// and histogram bucket at once. (Test names deliberately contain
// "Differential"/"Parallel" so the TSan ctest lane picks them up.)
#include <gtest/gtest.h>

#include <string>

#include "core/choose.hpp"
#include "core/system.hpp"
#include "msg/msg_system.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace cellflow {
namespace {

const Params kP(0.25, 0.05, 0.1);

SystemConfig shared_config(int side) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = kP;
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, side - 1};
  return cfg;
}

/// Runs `rounds` rounds with a scripted fail/recover schedule and returns
/// the Prometheus rendering of everything the run counted.
std::string run_shared(const ParallelPolicy& policy, std::uint64_t rounds,
                       const std::string& choose, bool with_failures) {
  System sys(shared_config(6), make_choose_policy(choose, 7));
  sys.set_parallel_policy(policy);
  obs::MetricsRegistry reg;
  sys.set_metrics(&reg);
  for (std::uint64_t k = 0; k < rounds; ++k) {
    if (with_failures) {
      if (k == 40) sys.fail(CellId{1, 3});
      if (k == 90) sys.recover(CellId{1, 3});
      if (k == 120) sys.fail(CellId{2, 2});
    }
    sys.update();
  }
  return obs::to_prometheus(reg);
}

TEST(MetricsDifferential, CountsIdenticalAcrossThreadCountsParallel) {
  const std::string serial =
      run_shared(ParallelPolicy::serial(), 400, "round-robin", true);
  for (const int threads : {1, 2, 4, 8}) {
    const std::string parallel = run_shared(ParallelPolicy::parallel(threads),
                                            400, "round-robin", true);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST(MetricsDifferential, CountsIdenticalWithStatefulChoosePolicy) {
  // RandomChoose pins the Signal phase serial; counts must still agree.
  const std::string serial =
      run_shared(ParallelPolicy::serial(), 300, "random", false);
  for (const int threads : {2, 8}) {
    EXPECT_EQ(serial, run_shared(ParallelPolicy::parallel(threads), 300,
                                 "random", false))
        << "threads=" << threads;
  }
}

TEST(MetricsDifferential, SharedAndMessageRealizationsAgree) {
  // Same configuration, same scripted failures, one registry for both:
  // after every round the two realizations' series must match count for
  // count (they only differ in the `realization` label).
  System shared{shared_config(6)};
  MsgSystemConfig msg_cfg;
  msg_cfg.side = 6;
  msg_cfg.params = kP;
  msg_cfg.sources = {CellId{1, 0}};
  msg_cfg.target = CellId{1, 5};
  MessageSystem msg{msg_cfg};

  obs::MetricsRegistry reg;
  shared.set_metrics(&reg);
  msg.set_metrics(&reg);

  for (std::uint64_t k = 0; k < 500; ++k) {
    if (k == 50) {
      shared.fail(CellId{1, 3});
      msg.fail(CellId{1, 3});
    }
    if (k == 150) {
      shared.recover(CellId{1, 3});
      msg.recover(CellId{1, 3});
    }
    shared.update();
    msg.update();
  }
  ASSERT_GT(shared.total_arrivals(), 0u);

  for (const obs::FamilySnapshot& fam : reg.snapshot()) {
    if (fam.name == "cellflow_messages_total") continue;  // message-only
    ASSERT_EQ(fam.series.size(), 2u) << fam.name;
    const obs::SeriesSnapshot& message = fam.series[0];  // sorted by label
    const obs::SeriesSnapshot& sh = fam.series[1];
    ASSERT_EQ(message.labels,
              (obs::Labels{{"realization", "message"}})) << fam.name;
    ASSERT_EQ(sh.labels, (obs::Labels{{"realization", "shared"}})) << fam.name;
    EXPECT_EQ(message.counter_value, sh.counter_value) << fam.name;
    EXPECT_EQ(message.count, sh.count) << fam.name;
    EXPECT_EQ(message.buckets, sh.buckets) << fam.name;
  }
}

TEST(MetricsDifferential, ProfilerUnderParallelEngineRecordsShardSpans) {
  // Worker threads record shard spans concurrently (mutex-guarded); the
  // TSan lane exercises this test to prove the profiler races nothing.
  System sys(shared_config(6), make_choose_policy("round-robin", 7));
  sys.set_parallel_policy(ParallelPolicy::parallel(4));
  obs::PhaseProfiler prof;
  sys.set_profiler(&prof);
  obs::MetricsRegistry reg;
  sys.set_metrics(&reg);
  for (int k = 0; k < 50; ++k) sys.update();

  bool saw_shard_span = false;
  bool saw_phase_span = false;
  for (const obs::PhaseProfiler::Span& s : prof.spans()) {
    if (s.shard >= 0) saw_shard_span = true;
    if (s.shard == -1) saw_phase_span = true;
  }
  EXPECT_TRUE(saw_shard_span);
  EXPECT_TRUE(saw_phase_span);
  EXPECT_GT(prof.total_ns("round"), 0u);
}

TEST(MetricsDifferential, MessageCountersMatchNetworkTotals) {
  MsgSystemConfig cfg;
  cfg.side = 5;
  cfg.params = kP;
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 4};
  MessageSystem msg{cfg};
  obs::MetricsRegistry reg;
  msg.set_metrics(&reg);
  for (int k = 0; k < 200; ++k) msg.update();

  // Each {exchange=...} series must equal the network's own per-payload
  // send count, and the five series must partition the total exactly.
  std::uint64_t by_exchange = 0;
  std::size_t series_seen = 0;
  for (const obs::FamilySnapshot& fam : reg.snapshot()) {
    if (fam.name != "cellflow_messages_total") continue;
    ASSERT_EQ(fam.series.size(), kPayloadTypeCount);
    for (const obs::SeriesSnapshot& s : fam.series) {
      ++series_seen;
      by_exchange += s.counter_value;
      for (std::size_t t = 0; t < kPayloadTypeCount; ++t) {
        const auto type = static_cast<PayloadType>(t);
        for (const auto& [key, value] : s.labels) {
          if (key == "exchange" && value == to_string(type)) {
            EXPECT_EQ(s.counter_value, msg.network().sent_count(type))
                << "exchange " << value;
          }
        }
      }
    }
  }
  EXPECT_EQ(series_seen, kPayloadTypeCount);
  EXPECT_EQ(by_exchange, msg.total_messages());
}

}  // namespace
}  // namespace cellflow
