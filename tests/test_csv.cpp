// Tests for CSV emission and parsing (RFC-4180 quoting round-trips).
#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"

namespace cellflow {
namespace {

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"x", "y"});
  w.row({1.0, 2.5});
  w.row({3.0, 4.0});
  EXPECT_EQ(os.str(), "x,y\n1,2.5\n3,4\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvWriter, MixedFieldTypes) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field("label").field(std::uint64_t{42}).field(std::int64_t{-7}).field(0.5);
  w.end_row();
  EXPECT_EQ(os.str(), "label,42,-7,0.5\n");
}

TEST(CsvWriter, QuotesFieldsWithCommas) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field("a,b").field("plain");
  w.end_row();
  EXPECT_EQ(os.str(), "\"a,b\",plain\n");
}

TEST(CsvWriter, EscapesEmbeddedQuotes) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field("say \"hi\"");
  w.end_row();
  EXPECT_EQ(os.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field("line1\nline2");
  w.end_row();
  EXPECT_EQ(os.str(), "\"line1\nline2\"\n");
}

TEST(CsvWriter, HeaderAfterRowsViolatesContract) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({1.0});
  EXPECT_THROW(w.header({"x"}), ContractViolation);
}

TEST(ParseCsvLine, SplitsPlainFields) {
  const auto fields = parse_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(ParseCsvLine, EmptyFieldsPreserved) {
  const auto fields = parse_csv_line("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(ParseCsvLine, UnquotesQuotedFields) {
  const auto fields = parse_csv_line("\"a,b\",c");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "c");
}

TEST(ParseCsvLine, HandlesDoubledQuotes) {
  const auto fields = parse_csv_line("\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(ParseCsvLine, SwallowsCarriageReturn) {
  const auto fields = parse_csv_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvRoundTrip, WriteThenParse) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field("weird,\"value\"").field("multi\nline").field(3.25);
  w.end_row();
  std::string line = os.str();
  line.pop_back();  // trailing newline
  const auto fields = parse_csv_line(line);
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "weird,\"value\"");
  EXPECT_EQ(fields[1], "multi\nline");
  EXPECT_EQ(fields[2], "3.25");
}

}  // namespace
}  // namespace cellflow
