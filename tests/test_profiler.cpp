// PhaseProfiler ring-buffer semantics: bounded storage that drops the
// *oldest* entries, exact drop counters, capacity re-bounding, and
// exact record counts under concurrent recording (the profiler is the
// one obs component workers write into from inside a batch, so its
// mutex discipline gets a dedicated hammer here).
#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace cellflow {
namespace {

using obs::PhaseProfiler;

/// Deterministic time points: epoch + k microseconds. The profiler only
/// stores differences against its epoch, so tests never read a clock.
PhaseProfiler::Clock::time_point at(const PhaseProfiler& p, std::uint64_t k) {
  return p.epoch() + std::chrono::microseconds(k);
}

TEST(Profiler, RecordsSpansUntilCapacityWithoutDrops) {
  PhaseProfiler prof(/*capacity=*/4);
  for (std::uint64_t r = 0; r < 4; ++r)
    prof.record("route", r, -1, at(prof, r), at(prof, r + 1));
  EXPECT_EQ(prof.span_count(), 4u);
  EXPECT_EQ(prof.dropped_spans(), 0u);
}

TEST(Profiler, FullRingDropsOldestFirst) {
  PhaseProfiler prof(/*capacity=*/4);
  for (std::uint64_t r = 0; r < 7; ++r)
    prof.record("route", r, -1, at(prof, r), at(prof, r + 1));
  EXPECT_EQ(prof.span_count(), 4u);
  EXPECT_EQ(prof.dropped_spans(), 3u);
  const std::vector<PhaseProfiler::Span> spans = prof.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first read-out of the newest four records.
  for (std::size_t i = 0; i < spans.size(); ++i)
    EXPECT_EQ(spans[i].round, i + 3) << "slot " << i;
}

TEST(Profiler, CounterRingDropsOldestIndependently) {
  PhaseProfiler prof(/*capacity=*/3);
  for (std::uint64_t k = 0; k < 5; ++k)
    prof.record_counter("imbalance_route", at(prof, k),
                        static_cast<double>(k));
  // Span ring untouched by counter traffic.
  EXPECT_EQ(prof.span_count(), 0u);
  EXPECT_EQ(prof.dropped_spans(), 0u);
  EXPECT_EQ(prof.counter_sample_count(), 3u);
  EXPECT_EQ(prof.dropped_counter_samples(), 2u);
  const auto samples = prof.counter_samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples.front().value, 2.0);
  EXPECT_DOUBLE_EQ(samples.back().value, 4.0);
}

TEST(Profiler, SetCapacityKeepsNewestAndPreservesDropCounters) {
  PhaseProfiler prof(/*capacity=*/8);
  for (std::uint64_t r = 0; r < 10; ++r)
    prof.record("move", r, -1, at(prof, r), at(prof, r + 1));
  ASSERT_EQ(prof.span_count(), 8u);
  ASSERT_EQ(prof.dropped_spans(), 2u);
  prof.set_capacity(3);
  EXPECT_EQ(prof.capacity(), 3u);
  EXPECT_EQ(prof.span_count(), 3u);
  EXPECT_EQ(prof.dropped_spans(), 2u);  // re-bounding is not a drop event
  const auto spans = prof.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].round, 7u);
  EXPECT_EQ(spans[2].round, 9u);
  // The re-bounded ring keeps ringing: one more record drops the oldest.
  prof.record("move", 10, -1, at(prof, 10), at(prof, 11));
  EXPECT_EQ(prof.span_count(), 3u);
  EXPECT_EQ(prof.dropped_spans(), 3u);
  EXPECT_EQ(prof.spans().front().round, 8u);
}

TEST(Profiler, TotalNsCountsOnlyWholePhaseSpans) {
  PhaseProfiler prof;
  prof.record("route", 0, -1, at(prof, 0), at(prof, 10));   // whole phase
  prof.record("route", 0, 2, at(prof, 0), at(prof, 4));     // shard slice
  prof.record_worker("route", 0, 1, at(prof, 0), at(prof, 7));  // worker
  EXPECT_EQ(prof.total_ns("route"), 10u * 1000u);
}

TEST(Profiler, ClearDropsEverythingAndZeroesCounters) {
  PhaseProfiler prof(/*capacity=*/2);
  for (std::uint64_t r = 0; r < 5; ++r) {
    prof.record("signal", r, -1, at(prof, r), at(prof, r + 1));
    prof.record_counter("c", at(prof, r), 1.0);
  }
  prof.clear();
  EXPECT_EQ(prof.span_count(), 0u);
  EXPECT_EQ(prof.counter_sample_count(), 0u);
  EXPECT_EQ(prof.dropped_spans(), 0u);
  EXPECT_EQ(prof.dropped_counter_samples(), 0u);
}

TEST(Profiler, ConcurrentRecordKeepsExactCounts) {
  // Unbounded enough to hold everything: every record must be retained.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 2000;
  PhaseProfiler prof(kThreads * kPerThread);
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&prof, t] {
      for (std::uint64_t r = 0; r < kPerThread; ++r)
        prof.record_worker("work", r, t, at(prof, r), at(prof, r + 1));
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(prof.span_count(), kThreads * kPerThread);
  EXPECT_EQ(prof.dropped_spans(), 0u);
  // Per-worker attribution survived: each lane has exactly kPerThread.
  std::vector<std::uint64_t> per_worker(kThreads, 0);
  for (const PhaseProfiler::Span& s : prof.spans()) {
    ASSERT_GE(s.worker, 0);
    ASSERT_LT(s.worker, kThreads);
    ++per_worker[static_cast<std::size_t>(s.worker)];
  }
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(per_worker[static_cast<std::size_t>(t)], kPerThread);
}

TEST(Profiler, ConcurrentRecordIntoSaturatedRingCountsEveryDrop) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1500;
  constexpr std::size_t kCapacity = 64;
  PhaseProfiler prof(kCapacity);
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&prof, t] {
      for (std::uint64_t r = 0; r < kPerThread; ++r)
        prof.record("route", r, t, at(prof, r), at(prof, r + 1));
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(prof.span_count(), kCapacity);
  EXPECT_EQ(prof.dropped_spans(), kThreads * kPerThread - kCapacity);
}

}  // namespace
}  // namespace cellflow
