// The zero-allocation contract of the round hot path (DESIGN.md §10).
// This executable — and only this executable among the tests — links the
// global operator-new interposer (src/obs/alloc_interposer.cpp), so
// obs::alloc_totals() counts every heap allocation in the process.
//
// Contract under test: once a System has run long enough for every
// scratch buffer to reach its high-water mark (warm-up), update() makes
// ZERO heap allocations per round — on the serial engine, on the
// parallel engine at every thread count, on the active-set scheduler,
// and under the kCompacting movement rule. Open systems (injection
// creates entities, consumption retires them) are additionally bounded:
// population growth may legitimately grow member/event vectors until
// saturation, but never unboundedly.
//
// Under ThreadSanitizer the strict-zero assertions are relaxed to the
// bounded form: TSan wraps the allocator and may shift library internals
// onto operator new, which is outside the contract being pinned.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/source.hpp"
#include "core/system.hpp"
#include "msg/msg_system.hpp"
#include "obs/alloc_stats.hpp"

#if defined(__SANITIZE_THREAD__)
#define CELLFLOW_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CELLFLOW_TSAN 1
#endif
#endif
#ifndef CELLFLOW_TSAN
#define CELLFLOW_TSAN 0
#endif

namespace {

using namespace cellflow;

/// Saturated closed system: one centered entity everywhere but the
/// target, no sources (micro_active_set's dense shape, side 12).
System make_dense_closed(MovementRule rule = MovementRule::kCoupled) {
  SystemConfig cfg;
  cfg.side = 12;
  cfg.params = Params(0.2, 0.05, 0.2);
  cfg.target = CellId{11, 6};
  cfg.sources = {};
  cfg.movement_rule = rule;
  System sys(cfg, nullptr, std::make_unique<NullSource>());
  for (const CellId id : sys.grid().all_cells()) {
    if (id == sys.target()) continue;
    sys.seed_entity(id, Vec2{static_cast<double>(id.i) + 0.5,
                             static_cast<double>(id.j) + 0.5});
  }
  return sys;
}

/// Allocation traffic of `rounds` update()s after a `warmup` that grows
/// every buffer to its high-water mark.
obs::AllocTotals churn(System& sys, int warmup, int rounds) {
  for (int k = 0; k < warmup; ++k) sys.update();
  const obs::AllocWindow window;
  for (int k = 0; k < rounds; ++k) sys.update();
  return window.delta();
}

void expect_alloc_free(System& sys, const char* label) {
  const obs::AllocTotals t = churn(sys, 600, 200);
#if CELLFLOW_TSAN
  // Bounded, not zero, under TSan (see file comment).
  EXPECT_LT(t.allocs, 200u) << label;
#else
  EXPECT_EQ(t.allocs, 0u) << label << ": allocations in steady state";
  EXPECT_EQ(t.bytes, 0u) << label;
#endif
}

TEST(AllocChurn, InterposerIsLinkedAndCounts) {
  ASSERT_TRUE(obs::alloc_interposer_linked())
      << "interposer translation unit missing from this binary — every "
         "other assertion in this file would pass vacuously";
  const obs::AllocWindow window;
  {
    std::vector<int> v(1000);
    ASSERT_EQ(v.size(), 1000u);  // keep the buffer alive and observable
  }
  const obs::AllocTotals t = window.delta();
  EXPECT_GE(t.allocs, 1u);
  EXPECT_GE(t.bytes, 1000u * sizeof(int));
  EXPECT_GE(t.frees, 1u);
}

TEST(AllocChurn, SerialSteadyStateIsAllocationFree) {
  System sys = make_dense_closed();
  sys.set_round_scheduler(RoundScheduler::kExhaustive);
  expect_alloc_free(sys, "serial exhaustive");
}

TEST(AllocChurn, ParallelSteadyStateIsAllocationFreeAtEveryWidth) {
  for (const int threads : {1, 2, 4, 8}) {
    System sys = make_dense_closed();
    sys.set_round_scheduler(RoundScheduler::kExhaustive);
    sys.set_parallel_policy(ParallelPolicy::parallel(threads));
    expect_alloc_free(
        sys, ("parallel-" + std::to_string(threads)).c_str());
  }
}

TEST(AllocChurn, ActiveSetSteadyStateIsAllocationFree) {
  System sys = make_dense_closed();
  sys.set_round_scheduler(RoundScheduler::kActiveSet);
  expect_alloc_free(sys, "active-set");
}

TEST(AllocChurn, CompactingSteadyStateIsAllocationFree) {
  System sys = make_dense_closed(MovementRule::kCompacting);
  sys.set_round_scheduler(RoundScheduler::kExhaustive);
  expect_alloc_free(sys, "compacting");
}

TEST(AllocChurn, OpenSystemInjectionChurnIsBounded) {
  // The default column workload: a source injecting every round, the
  // target consuming. Population and event logs reach saturation during
  // warm-up; after it, a round may touch the allocator only through
  // genuinely new state (an entity vector crossing a capacity it has
  // never reached), which the long warm-up makes rare — bounded well
  // below one allocation per round on average.
  SystemConfig cfg;  // defaults: side 8, source {1,0}, target {1,7}
  System sys(cfg);
  const obs::AllocTotals t = churn(sys, 600, 400);
  EXPECT_LT(t.allocs, 40u) << "open-system churn not bounded";
}

TEST(AllocChurn, MessageSystemSteadyStateChurnIsBounded) {
  // The message-passing realization: five exchanges per round through
  // reused inboxes, an allocation-free canonical sort, stack-array dist
  // views, and in-place batch moves. The ONE remaining allocation source
  // is the data-plane wire copy — a TransferBatch message carries a copy
  // of the retained batch (the sender must keep the original for the
  // stop-and-wait re-offer), one small vector per boundary crossing. So
  // steady-state churn is bounded by the transfer rate: strictly below
  // one allocation per round on the column workload (a fraction of the
  // rounds see a crossing), not zero.
  MsgSystemConfig cfg;  // defaults: side 8, source {1,0}, target {1,7}
  MessageSystem msg(std::move(cfg));
  for (int k = 0; k < 600; ++k) msg.update();
  const obs::AllocWindow window;
  constexpr int kRounds = 400;
  for (int k = 0; k < kRounds; ++k) msg.update();
  const obs::AllocTotals t = window.delta();
  EXPECT_LT(t.allocs, static_cast<std::uint64_t>(kRounds))
      << "message-system churn above one allocation per round";
}

}  // namespace
