// Tests for the geometry substrate: Vec2, Interval, Rect. The rectangle
// overlap/gap logic is the independent oracle behind the footprint
// separation checks, so it gets careful edge-case coverage.
#include <gtest/gtest.h>

#include "geometry/interval.hpp"
#include "geometry/rect.hpp"
#include "geometry/vec2.hpp"
#include "util/check.hpp"

namespace cellflow {
namespace {

TEST(Vec2, ArithmeticOps) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{0.5, -1.0};
  EXPECT_EQ(a + b, (Vec2{1.5, 1.0}));
  EXPECT_EQ(a - b, (Vec2{0.5, 3.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  Vec2 c = a;
  c += b;
  EXPECT_EQ(c, (Vec2{1.5, 1.0}));
}

TEST(Vec2, Distances) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(l2_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(l1_distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(linf_distance(a, b), 4.0);
}

TEST(Interval, CenteredConstruction) {
  const Interval iv = Interval::centered(2.0, 1.0);
  EXPECT_DOUBLE_EQ(iv.lo(), 1.5);
  EXPECT_DOUBLE_EQ(iv.hi(), 2.5);
  EXPECT_DOUBLE_EQ(iv.center(), 2.0);
  EXPECT_DOUBLE_EQ(iv.length(), 1.0);
}

TEST(Interval, InvalidEndpointsRejected) {
  EXPECT_THROW(Interval(2.0, 1.0), ContractViolation);
  EXPECT_THROW(Interval::centered(0.0, -1.0), ContractViolation);
}

TEST(Interval, ContainsPointsAndIntervals) {
  const Interval iv(0.0, 2.0);
  EXPECT_TRUE(iv.contains(0.0));
  EXPECT_TRUE(iv.contains(2.0));
  EXPECT_FALSE(iv.contains(2.0001));
  EXPECT_TRUE(iv.contains(Interval(0.5, 1.5)));
  EXPECT_FALSE(iv.contains(Interval(1.5, 2.5)));
}

TEST(Interval, IntersectsIncludesTouching) {
  EXPECT_TRUE(Interval(0.0, 1.0).intersects(Interval(1.0, 2.0)));
  EXPECT_FALSE(Interval(0.0, 1.0).intersects(Interval(1.1, 2.0)));
}

TEST(Interval, InteriorOverlapExcludesTouching) {
  EXPECT_FALSE(Interval(0.0, 1.0).overlaps_interior(Interval(1.0, 2.0)));
  EXPECT_TRUE(Interval(0.0, 1.0).overlaps_interior(Interval(0.9, 2.0)));
}

TEST(Interval, GapIsSymmetricAndZeroOnOverlap) {
  const Interval a(0.0, 1.0);
  const Interval b(1.5, 2.0);
  EXPECT_DOUBLE_EQ(a.gap_to(b), 0.5);
  EXPECT_DOUBLE_EQ(b.gap_to(a), 0.5);
  EXPECT_DOUBLE_EQ(a.gap_to(Interval(0.5, 0.7)), 0.0);
}

TEST(Rect, SquareFootprint) {
  const Rect r = Rect::square(Vec2{1.0, 2.0}, 0.25);
  EXPECT_DOUBLE_EQ(r.x().lo(), 0.875);
  EXPECT_DOUBLE_EQ(r.x().hi(), 1.125);
  EXPECT_DOUBLE_EQ(r.width(), 0.25);
  EXPECT_DOUBLE_EQ(r.height(), 0.25);
  EXPECT_EQ(r.center(), (Vec2{1.0, 2.0}));
  EXPECT_NEAR(r.area(), 0.0625, 1e-15);
}

TEST(Rect, UnitCellGeometry) {
  const Rect cell = Rect::unit_cell(2, 3);
  EXPECT_DOUBLE_EQ(cell.x().lo(), 2.0);
  EXPECT_DOUBLE_EQ(cell.x().hi(), 3.0);
  EXPECT_DOUBLE_EQ(cell.y().lo(), 3.0);
  EXPECT_DOUBLE_EQ(cell.y().hi(), 4.0);
  EXPECT_TRUE(cell.contains(Vec2{2.5, 3.5}));
  EXPECT_FALSE(cell.contains(Vec2{1.9, 3.5}));
}

TEST(Rect, ContainsRect) {
  const Rect cell = Rect::unit_cell(0, 0);
  EXPECT_TRUE(cell.contains(Rect::square(Vec2{0.5, 0.5}, 0.25)));
  // An entity sticking over the boundary is not contained.
  EXPECT_FALSE(cell.contains(Rect::square(Vec2{0.95, 0.5}, 0.25)));
}

TEST(Rect, OverlapRequiresSharedArea) {
  const Rect a = Rect::square(Vec2{0.0, 0.0}, 1.0);
  // Sharing only an edge is not overlap.
  EXPECT_FALSE(a.overlaps(Rect::square(Vec2{1.0, 0.0}, 1.0)));
  // Sharing only a corner is not overlap.
  EXPECT_FALSE(a.overlaps(Rect::square(Vec2{1.0, 1.0}, 1.0)));
  EXPECT_TRUE(a.overlaps(Rect::square(Vec2{0.9, 0.0}, 1.0)));
}

TEST(Rect, LinfGapMatchesAxisSeparation) {
  const Rect a = Rect::square(Vec2{0.0, 0.0}, 0.2);
  // Separated by 0.3 along x (edges at 0.1 and 0.4).
  const Rect b = Rect::square(Vec2{0.5, 0.0}, 0.2);
  EXPECT_NEAR(a.linf_gap(b), 0.3, 1e-12);
  EXPECT_NEAR(b.linf_gap(a), 0.3, 1e-12);
  // Overlapping on both axes: gap 0.
  const Rect c = Rect::square(Vec2{0.05, 0.05}, 0.2);
  EXPECT_DOUBLE_EQ(a.linf_gap(c), 0.0);
}

TEST(Rect, LinfGapPicksLargerAxis) {
  const Rect a = Rect::square(Vec2{0.0, 0.0}, 0.2);
  const Rect b = Rect::square(Vec2{0.5, 1.0}, 0.2);  // x gap 0.3, y gap 0.8
  EXPECT_NEAR(a.linf_gap(b), 0.8, 1e-12);
}

// Property sweep: for entity-sized squares placed with center spacing
// exactly d = rs + l along one axis, the footprint gap is exactly rs —
// the geometric fact the Safe predicate relies on.
class SafetySpacingGeometry
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SafetySpacingGeometry, CenterSpacingDImpliesEdgeGapRs) {
  const auto [l, rs] = GetParam();
  const double d = l + rs;
  const Rect a = Rect::square(Vec2{0.3, 0.7}, l);
  const Rect b = Rect::square(Vec2{0.3 + d, 0.7}, l);
  EXPECT_NEAR(a.linf_gap(b), rs, 1e-12);
  EXPECT_FALSE(a.overlaps(b));
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, SafetySpacingGeometry,
    ::testing::Values(std::pair{0.25, 0.05}, std::pair{0.2, 0.05},
                      std::pair{0.1, 0.05}, std::pair{0.25, 0.3},
                      std::pair{0.1, 0.6}, std::pair{0.25, 0.7}));

}  // namespace
}  // namespace cellflow
