// Unit tests for the Signal function (Figure 5): entry-strip conditions in
// all four directions, token acquisition/rotation, and blocking semantics.
#include "core/signal.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace cellflow {
namespace {

// l = 0.2, rs = 0.1 → d = 0.3; cell under test is ⟨2,3⟩ spanning
// [2,3]×[3,4].
const Params kP(0.2, 0.1, 0.1);
const CellId kSelf{2, 3};
const CellId kEast{3, 3};
const CellId kWest{1, 3};
const CellId kNorth{2, 4};
const CellId kSouth{2, 2};

Entity at(double x, double y) { return Entity{EntityId{0}, Vec2{x, y}}; }

TEST(EntryStrip, EmptyCellIsClearAllDirections) {
  for (const CellId t : {kEast, kWest, kNorth, kSouth})
    EXPECT_TRUE(entry_strip_clear(kSelf, t, {}, kP));
}

TEST(EntryStrip, EastBoundary) {
  // Condition: px + l/2 ≤ i+1−d = 2.7, i.e. px ≤ 2.6.
  const Entity ok[] = {at(2.6, 3.5)};
  EXPECT_TRUE(entry_strip_clear(kSelf, kEast, ok, kP));
  const Entity bad[] = {at(2.61, 3.5)};
  EXPECT_FALSE(entry_strip_clear(kSelf, kEast, bad, kP));
}

TEST(EntryStrip, WestBoundary) {
  // Condition: px − l/2 ≥ i+d = 2.3, i.e. px ≥ 2.4.
  const Entity ok[] = {at(2.4, 3.5)};
  EXPECT_TRUE(entry_strip_clear(kSelf, kWest, ok, kP));
  const Entity bad[] = {at(2.39, 3.5)};
  EXPECT_FALSE(entry_strip_clear(kSelf, kWest, bad, kP));
}

TEST(EntryStrip, NorthBoundary) {
  // Condition: py + l/2 ≤ j+1−d = 3.7, i.e. py ≤ 3.6.
  const Entity ok[] = {at(2.5, 3.6)};
  EXPECT_TRUE(entry_strip_clear(kSelf, kNorth, ok, kP));
  const Entity bad[] = {at(2.5, 3.61)};
  EXPECT_FALSE(entry_strip_clear(kSelf, kNorth, bad, kP));
}

TEST(EntryStrip, SouthBoundary) {
  // Condition: py − l/2 ≥ j+d = 3.3, i.e. py ≥ 3.4. (This is the case the
  // paper's Figure 5 typesets with the i−1 typo.)
  const Entity ok[] = {at(2.5, 3.4)};
  EXPECT_TRUE(entry_strip_clear(kSelf, kSouth, ok, kP));
  const Entity bad[] = {at(2.5, 3.39)};
  EXPECT_FALSE(entry_strip_clear(kSelf, kSouth, bad, kP));
}

TEST(EntryStrip, OneBadEntityBlocksAmongMany) {
  const Entity members[] = {at(2.5, 3.5), at(2.9, 3.5)};  // 2.9 blocks east
  EXPECT_FALSE(entry_strip_clear(kSelf, kEast, members, kP));
  EXPECT_TRUE(entry_strip_clear(kSelf, kWest, members, kP));
}

TEST(EntryStrip, NonNeighborViolatesContract) {
  EXPECT_THROW((void)entry_strip_clear(kSelf, CellId{4, 4}, {}, kP),
               ContractViolation);
  EXPECT_THROW((void)entry_strip_clear(kSelf, kSelf, {}, kP),
               ContractViolation);
}

// --- signal_step -----------------------------------------------------

SignalResult step(std::vector<Entity> members, NeighborSet ne_prev,
                  OptCellId token) {
  RoundRobinChoose rr;
  SignalInputs in;
  in.self = kSelf;
  in.members = members;
  in.ne_prev = std::move(ne_prev);
  in.token = token;
  return signal_step(std::move(in), kP, rr);
}

TEST(SignalStep, NoPredecessorsNoGrant) {
  const auto r = step({}, {}, std::nullopt);
  EXPECT_EQ(r.signal, OptCellId{});
  EXPECT_EQ(r.token, OptCellId{});
}

TEST(SignalStep, AcquiresTokenAndGrantsWhenClear) {
  const auto r = step({}, {kWest}, std::nullopt);
  EXPECT_EQ(r.signal, OptCellId(kWest));
  // Rotation with |NEPrev| = 1 keeps the same token (Figure 5 line 12).
  EXPECT_EQ(r.token, OptCellId(kWest));
}

TEST(SignalStep, BlocksWhenStripOccupied) {
  // Entity at x = 2.2 occupies the west strip (needs px ≥ 2.4).
  const auto r = step({at(2.2, 3.5)}, {kWest}, std::nullopt);
  EXPECT_EQ(r.signal, OptCellId{});
  // Blocking keeps the token — the same neighbor is retried (line 14).
  EXPECT_EQ(r.token, OptCellId(kWest));
}

TEST(SignalStep, BlockedTokenPersistsAcrossRounds) {
  const auto r1 = step({at(2.2, 3.5)}, {kWest, kEast}, kWest);
  EXPECT_EQ(r1.signal, OptCellId{});
  EXPECT_EQ(r1.token, OptCellId(kWest));
  // Even though kEast's strip is clear, the token holder stays kWest: the
  // protocol trades a round of throughput for fairness.
}

TEST(SignalStep, GrantRotatesTokenAwayFromServed) {
  // Both strips clear; token kWest granted, rotation must move off kWest.
  const auto r = step({}, {kWest, kEast}, kWest);
  EXPECT_EQ(r.signal, OptCellId(kWest));
  EXPECT_EQ(r.token, OptCellId(kEast));
}

TEST(SignalStep, RotationCyclesThroughThreePredecessors) {
  const NeighborSet three = {kWest, kSouth, kEast};  // sorted: W,S,E
  NeighborSet sorted = three;
  std::sort(sorted.begin(), sorted.end());
  OptCellId token = std::nullopt;
  std::vector<CellId> grants;
  for (int k = 0; k < 6; ++k) {
    const auto r = step({}, sorted, token);
    ASSERT_TRUE(r.signal.has_value());
    grants.push_back(*r.signal);
    token = r.token;
  }
  // Every predecessor served twice over 6 rounds.
  for (const CellId c : sorted)
    EXPECT_EQ(std::count(grants.begin(), grants.end(), c), 2);
}

TEST(SignalStep, EmptyNEPrevWithStaleTokenStillGrantsThenDrops) {
  // Token held from an earlier round, but the predecessor emptied:
  // NEPrev = {}. The strip is clear, so the grant goes out (harmless) and
  // the token is dropped (Figure 5 line 13: else token := ⊥).
  const auto r = step({}, {}, kWest);
  EXPECT_EQ(r.signal, OptCellId(kWest));
  EXPECT_EQ(r.token, OptCellId{});
}

TEST(SignalStep, StaleTokenRotationReentersNEPrev) {
  // Token kNorth is stale (not in NEPrev = {kWest}); grant happens, and
  // rotation must pick from NEPrev.
  const auto r = step({}, {kWest}, kNorth);
  EXPECT_EQ(r.signal, OptCellId(kNorth));
  EXPECT_EQ(r.token, OptCellId(kWest));
}

TEST(SignalStep, DepartedHolderChurnDoesNotStarveSurvivors) {
  // Adversarial NEPrev churn around the stale-holder rotation branch
  // (signal.cpp: `others` may equal ne_prev when the stale token holder
  // left NEPrev): kNorth's cell refills on even rounds and empties again
  // right after being served, so rotation repeatedly runs with a token
  // naming a departed predecessor. The persistent kWest/kEast must keep
  // being served at a bounded gap — the rotation position may neither
  // reset to the front nor wedge on the departed holder.
  OptCellId token = std::nullopt;
  std::vector<CellId> grants;
  bool stale_branch_seen = false;
  for (int round = 0; round < 30; ++round) {
    NeighborSet ne_prev = {kWest, kEast};
    if (round % 2 == 0) ne_prev.push_back(kNorth);
    std::sort(ne_prev.begin(), ne_prev.end());
    if (token.has_value() && ne_prev.size() > 1 &&
        std::find(ne_prev.begin(), ne_prev.end(), *token) == ne_prev.end())
      stale_branch_seen = true;
    const auto r = step({}, ne_prev, token);
    ASSERT_TRUE(r.signal.has_value()) << "round " << round;
    grants.push_back(*r.signal);
    token = r.token;
  }
  EXPECT_TRUE(stale_branch_seen);
  // No starvation of the persistent predecessors: each is served within
  // every window of 4 consecutive rounds.
  for (const CellId pred : {kWest, kEast}) {
    int gap = 0;
    int worst = 0;
    for (const CellId g : grants) {
      gap = g == pred ? 0 : gap + 1;
      worst = std::max(worst, gap);
    }
    EXPECT_LE(worst, 3) << "starved " << to_string(pred);
    EXPECT_GE(std::count(grants.begin(), grants.end(), pred), 10)
        << to_string(pred);
  }
}

TEST(SignalStep, GrantRequiresOnlyTokenDirectionClear) {
  // Entity blocks the east strip but not the west one; token kWest grants.
  const auto r = step({at(2.9, 3.5)}, {kWest, kEast}, kWest);
  EXPECT_EQ(r.signal, OptCellId(kWest));
}

TEST(SignalStep, UnsortedNEPrevViolatesContract) {
  RoundRobinChoose rr;
  SignalInputs in;
  in.self = kSelf;
  in.ne_prev = {kEast, kWest};  // kWest < kEast: unsorted
  in.token = std::nullopt;
  EXPECT_THROW((void)signal_step(std::move(in), kP, rr), ContractViolation);
}

}  // namespace
}  // namespace cellflow
