// Unit tests for the transport layer (src/net): NetworkModel's canonical
// delivery order and statistics, SyncNetwork's reliability, and
// FaultyNetwork's seeded fault schedule taken one fault kind at a time.
// The end-to-end properties (equivalence, safety under faults,
// restabilization) live in test_net_faults.cpp.
#include "net/faulty_network.hpp"
#include "net/network_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "grid/grid.hpp"
#include "util/check.hpp"

namespace cellflow {
namespace {

Message dist_msg(CellId from, CellId to, std::uint64_t hops) {
  return Message{from, to, DistAnnounce{Dist::finite(hops)}};
}

TEST(SyncNetwork, DeliversToAddresseeOnly) {
  Grid grid(3);
  SyncNetwork net;
  net.begin_round(0);
  net.send(dist_msg(CellId{0, 0}, CellId{0, 1}, 1));
  net.send(dist_msg(CellId{2, 2}, CellId{2, 1}, 2));
  const auto inboxes = net.deliver_all(grid);
  ASSERT_EQ(inboxes.size(), grid.cell_count());
  EXPECT_EQ(inboxes[grid.index_of(CellId{0, 1})].size(), 1u);
  EXPECT_EQ(inboxes[grid.index_of(CellId{2, 1})].size(), 1u);
  std::size_t delivered = 0;
  for (const auto& inbox : inboxes) delivered += inbox.size();
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(net.last_exchange_messages(), 2u);
}

TEST(SyncNetwork, CanonicalOrderSortsBySenderAndKeepsLinkFifo) {
  Grid grid(3);
  SyncNetwork net;
  net.begin_round(0);
  const CellId rx{1, 1};
  // Send from three neighbors in DESCENDING sender order, with two
  // messages on the (2,1)→(1,1) link to exercise the FIFO tie break.
  net.send(dist_msg(CellId{2, 1}, rx, 9));
  net.send(dist_msg(CellId{2, 1}, rx, 10));
  net.send(dist_msg(CellId{1, 2}, rx, 11));
  net.send(dist_msg(CellId{0, 1}, rx, 12));
  const auto inboxes = net.deliver_all(grid);
  const auto& inbox = inboxes[grid.index_of(rx)];
  ASSERT_EQ(inbox.size(), 4u);
  // Ascending sender id; the duplicate link retains send order.
  EXPECT_EQ(inbox[0].sender, (CellId{0, 1}));
  EXPECT_EQ(inbox[1].sender, (CellId{1, 2}));
  EXPECT_EQ(inbox[2].sender, (CellId{2, 1}));
  EXPECT_EQ(inbox[3].sender, (CellId{2, 1}));
  EXPECT_EQ(std::get<DistAnnounce>(inbox[2].payload).dist, Dist::finite(9));
  EXPECT_EQ(std::get<DistAnnounce>(inbox[3].payload).dist, Dist::finite(10));
}

TEST(SyncNetwork, CountsMessagesPerPayloadType) {
  Grid grid(3);
  SyncNetwork net;
  const CellId a{0, 0};
  const CellId b{0, 1};
  net.begin_round(0);
  net.send(Message{a, b, DistAnnounce{Dist::finite(1)}});
  net.send(Message{a, b, IntentAnnounce{OptCellId{b}, true}});
  net.send(Message{a, b, GrantAnnounce{OptCellId{a}, 1, 0}});
  net.send(Message{a, b, TransferBatch{1, {}}});
  net.send(Message{a, b, TransferAck{1}});
  net.send(Message{a, b, TransferAck{2}});
  (void)net.deliver_all(grid);
  EXPECT_EQ(net.sent_count(PayloadType::kDist), 1u);
  EXPECT_EQ(net.sent_count(PayloadType::kIntent), 1u);
  EXPECT_EQ(net.sent_count(PayloadType::kGrant), 1u);
  EXPECT_EQ(net.sent_count(PayloadType::kTransfer), 1u);
  EXPECT_EQ(net.sent_count(PayloadType::kAck), 2u);
  EXPECT_EQ(net.total_messages(), 6u);
  EXPECT_EQ(net.barrier_count(), 1u);
  for (std::size_t f = 0; f < kNetFaultCount; ++f)
    EXPECT_EQ(net.fault_count(static_cast<NetFault>(f)), 0u);
  EXPECT_TRUE(net.quiescent());
}

TEST(SyncNetwork, BarrierClearsTheQueue) {
  Grid grid(3);
  SyncNetwork net;
  net.begin_round(0);
  net.send(dist_msg(CellId{0, 0}, CellId{0, 1}, 1));
  (void)net.deliver_all(grid);
  // Second barrier with nothing queued delivers nothing.
  const auto inboxes = net.deliver_all(grid);
  for (const auto& inbox : inboxes) EXPECT_TRUE(inbox.empty());
  EXPECT_EQ(net.last_exchange_messages(), 0u);
}

TEST(SyncNetwork, RejectsMessagesToUnknownProcesses) {
  Grid grid(3);
  SyncNetwork net;
  net.begin_round(0);
  net.send(dist_msg(CellId{0, 0}, CellId{7, 7}, 1));
  EXPECT_THROW((void)net.deliver_all(grid), ContractViolation);
}

TEST(FaultyNetwork, DropAllDeliversNothingAndCounts) {
  Grid grid(3);
  NetFaultSpec spec;
  spec.drop_prob = 1.0;
  FaultyNetwork net(spec, 1);
  net.begin_round(0);
  net.send(dist_msg(CellId{0, 0}, CellId{0, 1}, 1));
  net.send(Message{CellId{0, 0}, CellId{0, 1}, TransferAck{1}});
  const auto inboxes = net.deliver_all(grid);
  for (const auto& inbox : inboxes) EXPECT_TRUE(inbox.empty());
  EXPECT_EQ(net.fault_count(NetFault::kDropped), 2u);
  EXPECT_EQ(net.fault_count(NetFault::kDropped, PayloadType::kDist), 1u);
  EXPECT_EQ(net.fault_count(NetFault::kDropped, PayloadType::kAck), 1u);
  EXPECT_FALSE(net.quiescent());  // the adversary never ceases by default
}

TEST(FaultyNetwork, DuplicateAllDeliversTwoCopies) {
  Grid grid(3);
  NetFaultSpec spec;
  spec.dup_prob = 1.0;
  FaultyNetwork net(spec, 1);
  net.begin_round(0);
  net.send(dist_msg(CellId{0, 0}, CellId{0, 1}, 1));
  const auto inboxes = net.deliver_all(grid);
  EXPECT_EQ(inboxes[grid.index_of(CellId{0, 1})].size(), 2u);
  EXPECT_EQ(net.fault_count(NetFault::kDuplicated), 1u);
}

TEST(FaultyNetwork, DelayResurfacesAtTheSameExchangeOfALaterRound) {
  Grid grid(3);
  NetFaultSpec spec;
  spec.delay_prob = 1.0;
  spec.max_delay_rounds = 1;
  FaultyNetwork net(spec, 1);
  // Round 0, exchange 1: the message is buffered, not delivered.
  net.begin_round(0);
  net.send(dist_msg(CellId{0, 0}, CellId{0, 1}, 3));
  auto inboxes = net.deliver_all(grid);
  EXPECT_TRUE(inboxes[grid.index_of(CellId{0, 1})].empty());
  EXPECT_EQ(net.delayed_in_flight(), 1u);
  // Remaining exchanges of round 0: still buffered.
  for (std::uint64_t e = 1; e < kExchangesPerRound; ++e) {
    inboxes = net.deliver_all(grid);
    EXPECT_TRUE(inboxes[grid.index_of(CellId{0, 1})].empty()) << e;
  }
  // Round 1, exchange 1 (max_delay_rounds = 1 → exactly one round late):
  // the stale DistAnnounce arrives at a dist barrier again.
  net.begin_round(1);
  inboxes = net.deliver_all(grid);
  ASSERT_EQ(inboxes[grid.index_of(CellId{0, 1})].size(), 1u);
  EXPECT_EQ(std::get<DistAnnounce>(
                inboxes[grid.index_of(CellId{0, 1})][0].payload)
                .dist,
            Dist::finite(3));
  EXPECT_EQ(net.delayed_in_flight(), 0u);
  EXPECT_EQ(net.fault_count(NetFault::kDelayed), 1u);
}

TEST(FaultyNetwork, PartitionCutsCrossingMessagesWhileActive) {
  Grid grid(2);
  const NetPartition part{1, 3,
                          CellMask::of(grid, {CellId{0, 0}, CellId{0, 1}})};
  NetFaultSpec spec;
  spec.partitions = {part};
  FaultyNetwork net(spec, 1);

  const auto crossing = [&] {
    net.send(dist_msg(CellId{0, 0}, CellId{1, 0}, 1));  // crosses
    net.send(dist_msg(CellId{0, 0}, CellId{0, 1}, 1));  // same side
    const auto inboxes = net.deliver_all(grid);
    return inboxes[grid.index_of(CellId{1, 0})].size();
  };

  net.begin_round(0);
  EXPECT_EQ(crossing(), 1u);  // not yet active
  net.begin_round(1);
  EXPECT_EQ(crossing(), 0u);  // active: the crossing message is cut
  EXPECT_FALSE(net.quiescent());
  net.begin_round(2);
  EXPECT_EQ(crossing(), 0u);
  net.begin_round(3);
  EXPECT_EQ(crossing(), 1u);  // healed
  EXPECT_TRUE(net.quiescent());
  EXPECT_EQ(net.fault_count(NetFault::kPartitioned, PayloadType::kDist),
            2u);
  // The same-side link was never touched.
  EXPECT_EQ(net.fault_count(NetFault::kDropped), 0u);
}

TEST(FaultyNetwork, StochasticFaultsCeaseAfterLastFaultRound) {
  Grid grid(2);
  NetFaultSpec spec;
  spec.drop_prob = 1.0;
  spec.last_fault_round = 1;
  FaultyNetwork net(spec, 1);
  net.begin_round(1);
  net.send(dist_msg(CellId{0, 0}, CellId{0, 1}, 1));
  auto inboxes = net.deliver_all(grid);
  EXPECT_TRUE(inboxes[grid.index_of(CellId{0, 1})].empty());
  EXPECT_FALSE(net.quiescent());  // round 1 is still fault-eligible
  net.begin_round(2);
  EXPECT_TRUE(net.quiescent());
  net.send(dist_msg(CellId{0, 0}, CellId{0, 1}, 1));
  inboxes = net.deliver_all(grid);
  EXPECT_EQ(inboxes[grid.index_of(CellId{0, 1})].size(), 1u);
}

TEST(FaultyNetwork, ZeroSpecConsumesNoRandomnessAndIsQuiescent) {
  Grid grid(2);
  FaultyNetwork net(NetFaultSpec{}, 99);
  EXPECT_FALSE(net.spec().stochastic());
  EXPECT_TRUE(net.quiescent());
  net.begin_round(0);
  net.send(dist_msg(CellId{0, 0}, CellId{1, 0}, 1));
  const auto inboxes = net.deliver_all(grid);
  EXPECT_EQ(inboxes[grid.index_of(CellId{1, 0})].size(), 1u);
  for (std::size_t f = 0; f < kNetFaultCount; ++f)
    EXPECT_EQ(net.fault_count(static_cast<NetFault>(f)), 0u);
}

}  // namespace
}  // namespace cellflow
