// Tests for the hexagonal-tessellation extension (§V "arbitrary
// tessellations"): lattice geometry, strips measured to edge planes,
// compaction movement with corner clamping, continuous transfers, and
// the Euclidean safety oracle under load and failures.
#include "hexflow/hex_system.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

const Params kP(0.25, 0.05, 0.1);  // d = 0.3, d + v = 0.4 ≤ a ≈ 0.866

HexSystem rhombus(int side = 6) {
  HexSystemConfig cfg;
  cfg.side = side;
  cfg.params = kP;
  cfg.sources = {HexId{1, 0}};
  cfg.target = HexId{1, side - 1};
  return HexSystem(cfg);
}

TEST(HexGrid, IndexRoundTripAndContainment) {
  const HexGrid g(5);
  EXPECT_EQ(g.cell_count(), 25u);
  for (std::size_t k = 0; k < g.cell_count(); ++k)
    EXPECT_EQ(g.index_of(g.id_of(k)), k);
  EXPECT_TRUE(g.contains(HexId{4, 4}));
  EXPECT_FALSE(g.contains(HexId{5, 0}));
  EXPECT_THROW(HexGrid(0), ContractViolation);
}

TEST(HexGrid, SixNeighborsInTheInterior) {
  const HexGrid g(5);
  EXPECT_EQ(g.neighbors(HexId{2, 2}).size(), 6u);
  // Rhombus corners: the acute corner ⟨0,0⟩ keeps only the +q and +r
  // neighbors; the obtuse corner ⟨4,0⟩ keeps −q, −q+r (diagonal), +r.
  EXPECT_EQ(g.neighbors(HexId{0, 0}).size(), 2u);
  EXPECT_EQ(g.neighbors(HexId{4, 0}).size(), 3u);
}

TEST(HexGrid, NeighborCentersAtTwiceInradius) {
  const HexGrid g(5);
  const HexId a{2, 2};
  for (const HexId b : g.neighbors(a)) {
    EXPECT_NEAR(l2_distance(g.center(a), g.center(b)), 2.0 * kHexInradius,
                1e-12);
    EXPECT_TRUE(g.are_neighbors(a, b));
    EXPECT_TRUE(g.are_neighbors(b, a));
  }
  EXPECT_FALSE(g.are_neighbors(a, HexId{4, 2}));
  EXPECT_FALSE(g.are_neighbors(a, a));
}

TEST(HexGrid, EdgeNormalsAreUnitAndOpposite) {
  const HexGrid g(5);
  const HexId a{2, 2};
  for (const HexId b : g.neighbors(a)) {
    const Vec2 n = g.edge_normal(a, b);
    EXPECT_NEAR(std::hypot(n.x, n.y), 1.0, 1e-12);
    const Vec2 m = g.edge_normal(b, a);
    EXPECT_NEAR(n.x + m.x, 0.0, 1e-12);
    EXPECT_NEAR(n.y + m.y, 0.0, 1e-12);
  }
}

TEST(HexGrid, HexDistanceMatchesBfsOnOpenGrid) {
  const HexGrid g(6);
  const HexId target{2, 3};
  HexSystemConfig cfg;
  cfg.side = 6;
  cfg.params = kP;
  cfg.sources = {};
  cfg.target = target;
  const HexSystem sys(cfg);
  const auto rho = sys.reference_distances();
  for (const HexId id : g.all_cells()) {
    ASSERT_TRUE(rho[g.index_of(id)].is_finite());
    EXPECT_EQ(rho[g.index_of(id)].hops(),
              static_cast<std::uint64_t>(g.hex_distance(id, target)))
        << to_string(id);
  }
}

TEST(HexFeasibility, AcceptsAndRejects) {
  EXPECT_TRUE(hex_feasible(Params(0.25, 0.05, 0.1)));
  // d + v = 0.25+0.55+0.06 = 0.86 ≤ 0.866.
  EXPECT_TRUE(hex_feasible(Params(0.25, 0.55, 0.06)));
  // d + v = 0.25+0.6+0.06 = 0.91 > inradius.
  EXPECT_FALSE(hex_feasible(Params(0.25, 0.6, 0.06)));
  HexSystemConfig cfg;
  cfg.params = Params(0.25, 0.6, 0.06);
  EXPECT_THROW(HexSystem{cfg}, ContractViolation);
}

TEST(HexSystem, RoutingConvergesToReference) {
  HexSystem sys = rhombus(6);
  for (int k = 0; k < 12; ++k) sys.update();
  const auto rho = sys.reference_distances();
  for (const HexId id : sys.grid().all_cells())
    EXPECT_EQ(sys.cell(id).dist, rho[sys.grid().index_of(id)])
        << to_string(id);
}

TEST(HexSystem, RoutingRecoversAroundFailures) {
  HexSystem sys = rhombus(6);
  for (int k = 0; k < 12; ++k) sys.update();
  sys.fail(HexId{1, 2});
  sys.fail(HexId{2, 2});
  for (int k = 0; k < 80; ++k) sys.update();
  const auto rho = sys.reference_distances();
  for (const HexId id : sys.grid().all_cells()) {
    if (rho[sys.grid().index_of(id)].is_finite()) {
      EXPECT_EQ(sys.cell(id).dist, rho[sys.grid().index_of(id)]);
    }
  }
}

TEST(HexSystem, EdgeDistanceGeometry) {
  HexSystem sys = rhombus(6);
  const HexId a{2, 2};
  const HexId b = sys.grid().neighbors(a).front();
  // At the cell center the edge distance equals the inradius.
  EXPECT_NEAR(sys.edge_distance(a, b, sys.grid().center(a)), kHexInradius,
              1e-12);
  // Halfway to the neighbor's center, it is zero (the shared edge).
  const Vec2 mid = 0.5 * (sys.grid().center(a) + sys.grid().center(b));
  EXPECT_NEAR(sys.edge_distance(a, b, mid), 0.0, 1e-12);
}

TEST(HexSystem, StripConditionTracksEdgeDistance) {
  HexSystem sys = rhombus(6);
  const HexId cell{2, 2};
  const HexId nb = sys.grid().neighbors(cell).front();
  const Vec2 n = sys.grid().edge_normal(cell, nb);
  // Entity well clear of the strip (at the cell center).
  sys.seed_entity(cell, sys.grid().center(cell));
  EXPECT_TRUE(sys.strip_clear(cell, nb));
  // Entity inside the strip: d + v = 0.4 from the edge means projection
  // > a − 0.4 from the center.
  const Vec2 in_strip =
      sys.grid().center(cell) + (kHexInradius - 0.2) * n;
  sys.seed_entity(cell, in_strip);
  EXPECT_FALSE(sys.strip_clear(cell, nb));
}

TEST(HexSystem, EntityTravelsAndIsConsumed) {
  HexSystemConfig cfg;
  cfg.side = 5;
  cfg.params = kP;
  cfg.sources = {};
  cfg.target = HexId{1, 4};
  HexSystem sys(cfg);
  sys.seed_entity(HexId{1, 0}, sys.grid().center(HexId{1, 0}));
  std::uint64_t rounds = 0;
  while (sys.total_arrivals() < 1 && rounds < 1000) {
    sys.update();
    ++rounds;
  }
  EXPECT_EQ(sys.total_arrivals(), 1u);
  EXPECT_EQ(sys.entity_count(), 0u);
}

TEST(HexSystem, ContinuousTransferPreservesPosition) {
  // The defining difference from the square protocol: no snap. Track an
  // entity across a hand-off and verify its displacement that round is
  // ≤ v (pure motion, no placement jump).
  HexSystemConfig cfg;
  cfg.side = 4;
  cfg.params = kP;
  cfg.sources = {};
  cfg.target = HexId{1, 3};
  HexSystem sys(cfg);
  const EntityId e =
      sys.seed_entity(HexId{1, 0}, sys.grid().center(HexId{1, 0}));
  Vec2 prev{};
  bool have_prev = false;
  for (int k = 0; k < 600 && sys.total_arrivals() == 0; ++k) {
    if (const auto* p = [&]() -> const HexEntity* {
          for (const HexId id : sys.grid().all_cells())
            if (const HexEntity* q = sys.cell(id).find(e)) return q;
          return nullptr;
        }()) {
      if (have_prev) {
        EXPECT_LE(l2_distance(p->center, prev), kP.velocity() + 1e-9)
            << "round " << k;
      }
      prev = p->center;
      have_prev = true;
    }
    sys.update();
  }
}

class HexSafety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HexSafety, OraclesHoldUnderTrafficAndFailures) {
  HexSystem sys = rhombus(6);
  Xoshiro256 rng(GetParam());
  for (int k = 0; k < 1200; ++k) {
    for (const HexId id : sys.grid().all_cells()) {
      if (sys.cell(id).failed) {
        if (rng.bernoulli(0.08)) sys.recover(id);
      } else if (rng.bernoulli(0.015)) {
        sys.fail(id);
      }
    }
    sys.update();
    const std::string safe = check_hex_safe(sys);
    ASSERT_TRUE(safe.empty()) << safe << " at round " << k;
    const std::string member = check_hex_membership(sys, 1e-9);
    ASSERT_TRUE(member.empty()) << member << " at round " << k;
  }
  EXPECT_GT(sys.total_injected(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HexSafety,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(HexSystem, SaturatedThroughputComparableToSquare) {
  // Same parameters as the Fig-7 v=0.1 series; the hex lattice's longer
  // cells (center spacing 2a ≈ 1.73 vs 1) slow per-cell traversal, so
  // expect the same order of magnitude, not equality.
  HexSystem sys = rhombus(6);
  for (int k = 0; k < 2500; ++k) sys.update();
  const double thr = static_cast<double>(sys.total_arrivals()) / 2500.0;
  EXPECT_GT(thr, 0.01);
  EXPECT_LT(thr, 0.5);
}

TEST(HexSystem, SeedValidation) {
  HexSystem sys = rhombus(6);
  const Vec2 c = sys.grid().center(HexId{2, 2});
  sys.seed_entity(HexId{2, 2}, c);
  // Too close (L2 < d = 0.3).
  EXPECT_THROW((void)sys.seed_entity(HexId{2, 2}, c + Vec2{0.2, 0.1}),
               ContractViolation);
  // Outside the hexagon.
  EXPECT_THROW(
      (void)sys.seed_entity(HexId{2, 2}, c + Vec2{2.0, 0.0}),
      ContractViolation);
  // Adequately spaced.
  EXPECT_NO_THROW((void)sys.seed_entity(HexId{2, 2}, c + Vec2{0.0, 0.45}));
}

TEST(HexSystem, FrozenWhenDisconnected) {
  HexSystemConfig cfg;
  cfg.side = 4;
  cfg.params = kP;
  cfg.sources = {};
  cfg.target = HexId{3, 3};
  HexSystem sys(cfg);
  const EntityId e = sys.seed_entity(HexId{0, 0}, sys.grid().center(HexId{0, 0}));
  for (const HexId nb : sys.grid().neighbors(HexId{0, 0})) sys.fail(nb);
  for (int k = 0; k < 80; ++k) sys.update();
  const HexEntity* p = sys.cell(HexId{0, 0}).find(e);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->center, sys.grid().center(HexId{0, 0}));
}

}  // namespace
}  // namespace cellflow
