// Tests for the trace recorder: event capture, failure diffing, and the
// determinism guarantee (identical seeds → byte-identical traces).
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "core/choose.hpp"
#include "failure/failure_model.hpp"
#include "helpers.hpp"
#include "sim/simulator.hpp"

namespace cellflow {
namespace {

const Params kP(0.2, 0.1, 0.1);

TEST(Trace, RecordsInjectionsTransfersAndConsumption) {
  System sys = testing::make_column_system(5, kP);
  NoFailures none;
  Simulator sim(sys, none);
  TraceRecorder trace;
  sim.add_observer(trace);
  sim.run(600);

  bool saw_inject = false;
  bool saw_transfer = false;
  bool saw_consume = false;
  for (const TraceRecord& r : trace.records()) {
    switch (r.kind) {
      case TraceRecord::Kind::kInject: saw_inject = true; break;
      case TraceRecord::Kind::kTransfer: saw_transfer = true; break;
      case TraceRecord::Kind::kConsume: saw_consume = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_inject);
  EXPECT_TRUE(saw_transfer);
  EXPECT_TRUE(saw_consume);
}

TEST(Trace, RecordsFailAndRecover) {
  System sys = testing::make_column_system(4, kP);
  ScriptedFailures failures({{5, CellId{2, 2}, false}, {9, CellId{2, 2}, true}});
  Simulator sim(sys, failures);
  TraceRecorder trace;
  sim.add_observer(trace);
  sim.run(20);

  int fails = 0;
  int recovers = 0;
  for (const TraceRecord& r : trace.records()) {
    if (r.kind == TraceRecord::Kind::kFail) {
      ++fails;
      EXPECT_EQ(r.cell, (CellId{2, 2}));
      EXPECT_EQ(r.round, 5u);
    }
    if (r.kind == TraceRecord::Kind::kRecover) {
      ++recovers;
      EXPECT_EQ(r.round, 9u);
    }
  }
  EXPECT_EQ(fails, 1);
  EXPECT_EQ(recovers, 1);
}

TEST(Trace, ConsumptionRecordsNameTheTarget) {
  System sys = testing::make_column_system(4, kP);
  NoFailures none;
  Simulator sim(sys, none);
  TraceRecorder trace;
  sim.add_observer(trace);
  sim.run(500);
  for (const TraceRecord& r : trace.records()) {
    if (r.kind == TraceRecord::Kind::kConsume) {
      EXPECT_EQ(r.other, sys.target());
    }
  }
}

TEST(Trace, SerializeIsHumanReadable) {
  System sys = testing::make_column_system(4, kP);
  NoFailures none;
  Simulator sim(sys, none);
  TraceRecorder trace;
  sim.add_observer(trace);
  sim.run(400);
  const std::string s = trace.serialize();
  EXPECT_NE(s.find("inject"), std::string::npos);
  EXPECT_NE(s.find("transfer"), std::string::npos);
  EXPECT_NE(s.find("->"), std::string::npos);
}

TEST(Trace, ToStringFormatsEachKind) {
  TraceRecord r;
  r.round = 3;
  r.kind = TraceRecord::Kind::kFail;
  r.cell = CellId{1, 2};
  EXPECT_EQ(to_string(r), "3 fail <1,2>");
  r.kind = TraceRecord::Kind::kInject;
  r.entity = EntityId{9};
  EXPECT_EQ(to_string(r), "3 inject p9 at <1,2>");
  r.kind = TraceRecord::Kind::kTransfer;
  r.other = CellId{1, 3};
  EXPECT_EQ(to_string(r), "3 transfer p9 <1,2> -> <1,3>");
}

TEST(Trace, ParseTraceRoundTripsSerialize) {
  System sys = testing::make_column_system(5, kP);
  ScriptedFailures failures(
      {{5, CellId{3, 3}, false}, {9, CellId{3, 3}, true}});
  Simulator sim(sys, failures);
  TraceRecorder trace;
  sim.add_observer(trace);
  sim.run(600);
  ASSERT_FALSE(trace.records().empty());
  EXPECT_EQ(parse_trace(trace.serialize()), trace.records());
}

TEST(Trace, ParseTraceAcceptsEveryKind) {
  const std::string text =
      "3 fail <1,2>\n"
      "4 recover <1,2>\n"
      "5 inject p9 at <1,0>\n"
      "6 transfer p9 <1,0> -> <1,1>\n"
      "7 consume p9 <1,1> -> <1,2>\n";
  const auto records = parse_trace(text);
  ASSERT_EQ(records.size(), 5u);
  std::string round_tripped;
  for (const TraceRecord& r : records) round_tripped += to_string(r) + '\n';
  EXPECT_EQ(round_tripped, text);
}

TEST(Trace, ParseTraceRejectsMalformedInput) {
  EXPECT_THROW(parse_trace("3 explode <1,2>\n"), std::runtime_error);
  EXPECT_THROW(parse_trace("x fail <1,2>\n"), std::runtime_error);
  EXPECT_THROW(parse_trace("3 fail <1,2> trailing\n"), std::runtime_error);
  EXPECT_THROW(parse_trace("3 inject p9 at <1;0>\n"), std::runtime_error);
  EXPECT_THROW(parse_trace("3 transfer p9 <1,0>\n"), std::runtime_error);
  EXPECT_TRUE(parse_trace("").empty());
  EXPECT_TRUE(parse_trace("\n\n").empty());
}

// Golden pin of one serialized trace: cellflow_sim's default tiny
// scenario (3×3, source ⟨1,0⟩, target ⟨1,2⟩, round-robin, no failures)
// for 25 rounds. If a deliberate protocol change shifts these events,
// re-derive by running the same configuration and reading the new trace
// — do not edit lines ad hoc.
TEST(Trace, GoldenSerializedTrace) {
  SystemConfig cfg;
  cfg.side = 3;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 2};
  System sys(cfg, make_choose_policy("round-robin", 1));
  NoFailures none;
  Simulator sim(sys, none);
  TraceRecorder trace;
  sim.add_observer(trace);
  sim.run(25);
  EXPECT_EQ(trace.serialize(),
            "0 inject p0 at <1,0>\n"
            "1 inject p1 at <1,0>\n"
            "4 inject p2 at <1,0>\n"
            "4 transfer p0 <1,0> -> <1,1>\n"
            "10 inject p3 at <1,0>\n"
            "12 transfer p1 <1,0> -> <1,1>\n"
            "12 consume p0 <1,1> -> <1,2>\n"
            "16 inject p4 at <1,0>\n"
            "18 transfer p2 <1,0> -> <1,1>\n"
            "20 consume p1 <1,1> -> <1,2>\n"
            "22 inject p5 at <1,0>\n"
            "24 transfer p3 <1,0> -> <1,1>\n");
}

// The determinism pillar: same seeds → identical traces, different seeds
// → different traces (with a stochastic policy in play).
std::string run_traced(std::uint64_t seed, std::uint64_t rounds) {
  SystemConfig cfg;
  cfg.side = 6;
  cfg.params = kP;
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 5};
  System sys(cfg, make_choose_policy("random", seed));
  RandomFailRecover failures(0.02, 0.1, seed ^ 0xF00D);
  Simulator sim(sys, failures);
  TraceRecorder trace;
  sim.add_observer(trace);
  sim.run(rounds);
  return trace.serialize();
}

TEST(Trace, IdenticalSeedsGiveIdenticalTraces) {
  EXPECT_EQ(run_traced(42, 800), run_traced(42, 800));
}

TEST(Trace, DifferentSeedsDiverge) {
  EXPECT_NE(run_traced(42, 800), run_traced(43, 800));
}

}  // namespace
}  // namespace cellflow
