// Tests for the grid topology substrate.
#include "grid/grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/check.hpp"

namespace cellflow {
namespace {

TEST(Direction, StepsAndOpposites) {
  EXPECT_EQ(step_of(Direction::kEast), (std::array<int, 2>{1, 0}));
  EXPECT_EQ(step_of(Direction::kWest), (std::array<int, 2>{-1, 0}));
  EXPECT_EQ(step_of(Direction::kNorth), (std::array<int, 2>{0, 1}));
  EXPECT_EQ(step_of(Direction::kSouth), (std::array<int, 2>{0, -1}));
  for (const Direction d : kAllDirections)
    EXPECT_EQ(opposite(opposite(d)), d);
}

TEST(Direction, Names) {
  EXPECT_STREQ(to_cstring(Direction::kNorth), "north");
  EXPECT_STREQ(to_cstring(Direction::kSouth), "south");
}

TEST(Grid, BasicProperties) {
  const Grid g(8);
  EXPECT_EQ(g.side(), 8);
  EXPECT_EQ(g.cell_count(), 64u);
  EXPECT_TRUE(g.contains(CellId{0, 0}));
  EXPECT_TRUE(g.contains(CellId{7, 7}));
  EXPECT_FALSE(g.contains(CellId{8, 0}));
  EXPECT_FALSE(g.contains(CellId{0, -1}));
}

TEST(Grid, InvalidSideRejected) {
  EXPECT_THROW(Grid(0), ContractViolation);
  EXPECT_THROW(Grid(-3), ContractViolation);
}

TEST(Grid, IndexRoundTrip) {
  const Grid g(5);
  for (std::size_t k = 0; k < g.cell_count(); ++k)
    EXPECT_EQ(g.index_of(g.id_of(k)), k);
  EXPECT_THROW((void)g.index_of(CellId{5, 0}), ContractViolation);
  EXPECT_THROW((void)g.id_of(25), ContractViolation);
}

TEST(Grid, InteriorCellHasFourNeighbors) {
  const Grid g(4);
  const auto nbrs = g.neighbors(CellId{1, 2});
  ASSERT_EQ(nbrs.size(), 4u);
  // kAllDirections order: E, W, N, S.
  EXPECT_EQ(nbrs[0], (CellId{2, 2}));
  EXPECT_EQ(nbrs[1], (CellId{0, 2}));
  EXPECT_EQ(nbrs[2], (CellId{1, 3}));
  EXPECT_EQ(nbrs[3], (CellId{1, 1}));
}

TEST(Grid, CornerCellHasTwoNeighbors) {
  const Grid g(4);
  const auto nbrs = g.neighbors(CellId{0, 0});
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), CellId{1, 0}), nbrs.end());
  EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), CellId{0, 1}), nbrs.end());
}

TEST(Grid, EdgeCellHasThreeNeighbors) {
  const Grid g(4);
  EXPECT_EQ(g.neighbors(CellId{2, 0}).size(), 3u);
  EXPECT_EQ(g.neighbors(CellId{0, 2}).size(), 3u);
  EXPECT_EQ(g.neighbors(CellId{3, 1}).size(), 3u);
}

TEST(Grid, NeighborAtBoundaryIsNull) {
  const Grid g(3);
  EXPECT_FALSE(g.neighbor(CellId{0, 0}, Direction::kWest).has_value());
  EXPECT_FALSE(g.neighbor(CellId{0, 0}, Direction::kSouth).has_value());
  EXPECT_FALSE(g.neighbor(CellId{2, 2}, Direction::kEast).has_value());
  EXPECT_FALSE(g.neighbor(CellId{2, 2}, Direction::kNorth).has_value());
  EXPECT_EQ(g.neighbor(CellId{1, 1}, Direction::kEast), OptCellId(CellId{2, 1}));
}

TEST(Grid, AreNeighborsIsManhattanOne) {
  const Grid g(4);
  EXPECT_TRUE(g.are_neighbors(CellId{1, 1}, CellId{1, 2}));
  EXPECT_TRUE(g.are_neighbors(CellId{1, 1}, CellId{0, 1}));
  EXPECT_FALSE(g.are_neighbors(CellId{1, 1}, CellId{2, 2}));  // diagonal
  EXPECT_FALSE(g.are_neighbors(CellId{1, 1}, CellId{1, 1}));  // self
  EXPECT_FALSE(g.are_neighbors(CellId{1, 1}, CellId{1, 3}));  // distance 2
}

TEST(Grid, DirectionBetweenNeighbors) {
  const Grid g(4);
  EXPECT_EQ(g.direction_between(CellId{1, 1}, CellId{2, 1}), Direction::kEast);
  EXPECT_EQ(g.direction_between(CellId{1, 1}, CellId{0, 1}), Direction::kWest);
  EXPECT_EQ(g.direction_between(CellId{1, 1}, CellId{1, 2}), Direction::kNorth);
  EXPECT_EQ(g.direction_between(CellId{1, 1}, CellId{1, 0}), Direction::kSouth);
  EXPECT_THROW((void)g.direction_between(CellId{1, 1}, CellId{3, 3}),
               ContractViolation);
}

TEST(Grid, ManhattanDistance) {
  const Grid g(8);
  EXPECT_EQ(g.manhattan(CellId{1, 0}, CellId{1, 7}), 7);
  EXPECT_EQ(g.manhattan(CellId{0, 0}, CellId{7, 7}), 14);
  EXPECT_EQ(g.manhattan(CellId{3, 3}, CellId{3, 3}), 0);
  EXPECT_EQ(g.manhattan(CellId{7, 2}, CellId{2, 4}), 7);
}

TEST(Grid, CellRectMatchesUnitSquare) {
  const Grid g(4);
  const Rect r = g.cell_rect(CellId{2, 1});
  EXPECT_DOUBLE_EQ(r.x().lo(), 2.0);
  EXPECT_DOUBLE_EQ(r.y().lo(), 1.0);
  EXPECT_DOUBLE_EQ(r.area(), 1.0);
}

TEST(Grid, AllCellsEnumeratesRowMajor) {
  const Grid g(3);
  const auto all = g.all_cells();
  ASSERT_EQ(all.size(), 9u);
  EXPECT_EQ(all.front(), (CellId{0, 0}));
  EXPECT_EQ(all[1], (CellId{1, 0}));
  EXPECT_EQ(all.back(), (CellId{2, 2}));
}

// Property sweep over grid sizes: neighbor relation is symmetric and the
// neighbor counts total 2·2·N·(N−1) directed pairs.
class GridProperties : public ::testing::TestWithParam<int> {};

TEST_P(GridProperties, NeighborRelationSymmetric) {
  const Grid g(GetParam());
  for (const CellId a : g.all_cells())
    for (const CellId b : g.neighbors(a))
      EXPECT_TRUE(g.are_neighbors(b, a));
}

TEST_P(GridProperties, DirectedNeighborCountFormula) {
  const Grid g(GetParam());
  std::size_t total = 0;
  for (const CellId a : g.all_cells()) total += g.neighbors(a).size();
  const auto n = static_cast<std::size_t>(GetParam());
  EXPECT_EQ(total, 4u * n * (n - 1));
}

TEST_P(GridProperties, NeighborOfInverseOfDirectionBetween) {
  const Grid g(GetParam());
  for (const CellId a : g.all_cells()) {
    for (const CellId b : g.neighbors(a)) {
      const Direction d = g.direction_between(a, b);
      EXPECT_EQ(g.neighbor(a, d), OptCellId(b));
      EXPECT_EQ(g.direction_between(b, a), opposite(d));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sides, GridProperties,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace cellflow
