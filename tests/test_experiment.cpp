// Tests for the experiment harness shared by the benchmark binaries.
#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "grid/path.hpp"

namespace cellflow {
namespace {

TEST(Workload, Fig7BaseMatchesPaperSetting) {
  const WorkloadSpec spec = fig7_base(0.05, 0.1);
  EXPECT_EQ(spec.config.side, 8);
  EXPECT_DOUBLE_EQ(spec.config.params.entity_length(), 0.25);
  EXPECT_DOUBLE_EQ(spec.config.params.safety_gap(), 0.05);
  EXPECT_DOUBLE_EQ(spec.config.params.velocity(), 0.1);
  EXPECT_EQ(spec.config.target, (CellId{1, 7}));
  ASSERT_EQ(spec.config.sources.size(), 1u);
  EXPECT_EQ(spec.config.sources[0], (CellId{1, 0}));
  EXPECT_EQ(spec.rounds, 2500u);
  EXPECT_TRUE(spec.carve_path.empty());
}

TEST(Workload, Fig8BaseCarvesLengthEightPath) {
  for (const std::size_t turns : {0u, 3u, 6u}) {
    const WorkloadSpec spec = fig8_base(turns, 0.2, 0.2);
    ASSERT_EQ(spec.carve_path.size(), 8u);
    const Grid grid(8);
    const Path path(grid, spec.carve_path);
    EXPECT_EQ(path.turns(), turns);
    EXPECT_EQ(spec.config.target, path.target());
    ASSERT_EQ(spec.config.sources.size(), 1u);
    EXPECT_EQ(spec.config.sources[0], path.source());
    EXPECT_DOUBLE_EQ(spec.config.params.safety_gap(), 0.05);
  }
}

TEST(Workload, Fig9BaseMatchesPaperSetting) {
  const WorkloadSpec spec = fig9_base(0.03, 0.15);
  EXPECT_DOUBLE_EQ(spec.pf, 0.03);
  EXPECT_DOUBLE_EQ(spec.pr, 0.15);
  EXPECT_EQ(spec.rounds, 20000u);
  EXPECT_DOUBLE_EQ(spec.config.params.entity_length(), 0.2);
  EXPECT_DOUBLE_EQ(spec.config.params.velocity(), 0.2);
  EXPECT_FALSE(spec.protect_target);
}

TEST(RunWorkload, DeterministicUnderSeed) {
  WorkloadSpec spec = fig7_base(0.05, 0.2);
  spec.rounds = 600;
  const RunResult a = run_workload(spec, 7);
  const RunResult b = run_workload(spec, 7);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST(RunWorkload, ReportsConsistentCounters) {
  WorkloadSpec spec = fig7_base(0.05, 0.2);
  spec.rounds = 800;
  const RunResult r = run_workload(spec, 3);
  EXPECT_TRUE(r.safety_clean) << r.safety_report;
  EXPECT_GT(r.arrivals, 0u);
  EXPECT_GE(r.injected, r.arrivals);
  EXPECT_NEAR(r.throughput, static_cast<double>(r.arrivals) / 800.0, 1e-12);
  EXPECT_GT(r.mean_latency, 0.0);
  EXPECT_GT(r.mean_population, 0.0);
}

TEST(RunWorkload, RandomPolicyVariesWithSeed) {
  WorkloadSpec spec = fig7_base(0.05, 0.2);
  spec.rounds = 600;
  spec.choose_policy = "random";
  spec.pf = 0.02;
  spec.pr = 0.1;
  const RunResult a = run_workload(spec, 1);
  const RunResult b = run_workload(spec, 2);
  // Different seeds drive different failure patterns; arrival counts
  // almost surely differ.
  EXPECT_NE(a.arrivals, b.arrivals);
}

TEST(RunWorkload, SourceRateScalesInjection) {
  WorkloadSpec full = fig7_base(0.05, 0.2);
  full.rounds = 1000;
  WorkloadSpec half = full;
  half.source_rate = 0.1;
  const RunResult rf = run_workload(full, 5);
  const RunResult rh = run_workload(half, 5);
  EXPECT_GT(rf.injected, rh.injected);
  EXPECT_GT(rh.injected, 0u);
}

TEST(RunWorkloadSeeds, AggregatesAcrossSeeds) {
  WorkloadSpec spec = fig7_base(0.05, 0.2);
  spec.rounds = 500;
  spec.choose_policy = "random";
  const auto seeds = default_seeds(4);
  const RunningStats stats = run_workload_seeds(spec, seeds);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_GT(stats.mean(), 0.0);
  EXPECT_GE(stats.max(), stats.min());
}

TEST(DefaultSeeds, StableAndDistinct) {
  const auto a = default_seeds(5);
  const auto b = default_seeds(5);
  EXPECT_EQ(a, b);
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = i + 1; j < a.size(); ++j) EXPECT_NE(a[i], a[j]);
}

TEST(RunWorkload, CarvedWorkloadConfinesTraffic) {
  WorkloadSpec spec = fig8_base(4, 0.2, 0.2);
  spec.rounds = 600;
  const RunResult r = run_workload(spec, 9);
  EXPECT_TRUE(r.safety_clean);
  EXPECT_GT(r.arrivals, 0u);
}

}  // namespace
}  // namespace cellflow
