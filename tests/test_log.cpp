// Tests for the logging facility.
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cellflow {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::set_sink(&sink_);
    saved_level_ = Logger::level();
  }
  void TearDown() override {
    Logger::set_sink(nullptr);
    Logger::set_level(saved_level_);
  }
  std::ostringstream sink_;
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, EmitsAtOrAboveLevel) {
  Logger::set_level(LogLevel::kInfo);
  CF_LOG(kInfo) << "hello " << 42;
  CF_LOG(kWarn) << "careful";
  EXPECT_NE(sink_.str().find("[INFO] hello 42"), std::string::npos);
  EXPECT_NE(sink_.str().find("[WARN] careful"), std::string::npos);
}

TEST_F(LogTest, SuppressesBelowLevel) {
  Logger::set_level(LogLevel::kError);
  CF_LOG(kDebug) << "invisible";
  CF_LOG(kInfo) << "also invisible";
  CF_LOG(kWarn) << "still invisible";
  EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LogTest, OffSilencesEverything) {
  Logger::set_level(LogLevel::kOff);
  CF_LOG(kError) << "nope";
  EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LogTest, StreamExpressionNotEvaluatedWhenDisabled) {
  Logger::set_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&]() {
    ++evaluations;
    return std::string("costly");
  };
  CF_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  CF_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, EnabledReflectsLevel) {
  Logger::set_level(LogLevel::kWarn);
  EXPECT_FALSE(Logger::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::enabled(LogLevel::kError));
}

// CF_LOG may fire from parallel-engine worker threads; write() holds a
// mutex across the whole line, so concurrent lines interleave whole —
// never torn mid-line. (Named "Parallel" so the TSan lane runs it.)
TEST_F(LogTest, ParallelWritersNeverTearLines) {
  Logger::set_level(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int k = 0; k < kLines; ++k)
        CF_LOG(kInfo) << "writer " << t << " line " << k << " end";
    });
  }
  for (std::thread& w : writers) w.join();

  std::istringstream in(sink_.str());
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    ++count;
    EXPECT_TRUE(line.starts_with("[INFO] writer ")) << line;
    EXPECT_TRUE(line.ends_with(" end")) << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

TEST(ParseLogLevel, AllNamesAndErrors) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_THROW((void)parse_log_level("verbose"), std::runtime_error);
}

}  // namespace
}  // namespace cellflow
