// Tests for the logging facility.
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace cellflow {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::set_sink(&sink_);
    saved_level_ = Logger::level();
  }
  void TearDown() override {
    Logger::set_sink(nullptr);
    Logger::set_level(saved_level_);
  }
  std::ostringstream sink_;
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, EmitsAtOrAboveLevel) {
  Logger::set_level(LogLevel::kInfo);
  CF_LOG(kInfo) << "hello " << 42;
  CF_LOG(kWarn) << "careful";
  EXPECT_NE(sink_.str().find("[INFO] hello 42"), std::string::npos);
  EXPECT_NE(sink_.str().find("[WARN] careful"), std::string::npos);
}

TEST_F(LogTest, SuppressesBelowLevel) {
  Logger::set_level(LogLevel::kError);
  CF_LOG(kDebug) << "invisible";
  CF_LOG(kInfo) << "also invisible";
  CF_LOG(kWarn) << "still invisible";
  EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LogTest, OffSilencesEverything) {
  Logger::set_level(LogLevel::kOff);
  CF_LOG(kError) << "nope";
  EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LogTest, StreamExpressionNotEvaluatedWhenDisabled) {
  Logger::set_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&]() {
    ++evaluations;
    return std::string("costly");
  };
  CF_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  CF_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, EnabledReflectsLevel) {
  Logger::set_level(LogLevel::kWarn);
  EXPECT_FALSE(Logger::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::enabled(LogLevel::kError));
}

TEST(ParseLogLevel, AllNamesAndErrors) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_THROW((void)parse_log_level("verbose"), std::runtime_error);
}

}  // namespace
}  // namespace cellflow
