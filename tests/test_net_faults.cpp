// End-to-end properties of the protocol over an unreliable network
// (DESIGN.md §8), in three layers:
//
//   1. Differential pin: a FaultyNetwork whose schedule never fires is
//      BIT-IDENTICAL to SyncNetwork across 48 randomized executions with
//      crashes — the fault machinery costs nothing when idle, and (via
//      test_msg_system.cpp / test_differential.cpp) the pin extends to
//      the shared-variable realization.
//   2. Property fuzz: under 48 randomized drop/delay/duplication(/crash)
//      schedules, every §III-A safety oracle and the entity-conservation
//      ledger hold after EVERY round (msg_audit::check_all) — message
//      faults can stall the flow but can never make it unsafe, lose an
//      entity, or duplicate one.
//   3. Stabilization: once the network quiesces (Lemma 6's "failures
//      cease" read as "faults cease"), dist/next reconverge to the BFS
//      reference within the 4·N² bound and throughput resumes — including
//      after a scripted partition heals.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "grid/mask.hpp"
#include "msg/msg_audit.hpp"
#include "msg/msg_system.hpp"
#include "net/faulty_network.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

struct FuzzCase {
  std::uint64_t seed;
};

void PrintTo(const FuzzCase& c, std::ostream* os) { *os << "seed=" << c.seed; }

/// Random small configuration drawn from `rng` (test_differential idiom).
MsgSystemConfig random_config(Xoshiro256& rng) {
  const int side = 4 + static_cast<int>(rng.below(3));  // 4..6
  const double l = rng.uniform(0.1, 0.35);
  const double rs = rng.uniform(0.05, std::min(0.4, 0.95 - l));
  const double v = rng.uniform(0.05, l);
  const auto cell = [&] {
    return CellId{
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(side))),
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(side)))};
  };
  MsgSystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(l, rs, v);
  cfg.target = cell();
  cfg.sources = {cfg.target};
  while (cfg.sources[0] == cfg.target) cfg.sources = {cell()};
  return cfg;
}

void expect_bit_identical(const MessageSystem& a, const MessageSystem& b,
                          int round) {
  ASSERT_EQ(a.total_arrivals(), b.total_arrivals()) << "round " << round;
  ASSERT_EQ(a.total_injected(), b.total_injected()) << "round " << round;
  for (const CellId id : a.grid().all_cells()) {
    const CellState& ca = a.cell(id);
    const CellState& cb = b.cell(id);
    ASSERT_EQ(ca.failed, cb.failed) << to_string(id) << " round " << round;
    ASSERT_EQ(ca.dist, cb.dist) << to_string(id) << " round " << round;
    ASSERT_EQ(ca.next, cb.next) << to_string(id) << " round " << round;
    ASSERT_EQ(ca.signal, cb.signal) << to_string(id) << " round " << round;
    ASSERT_EQ(ca.token, cb.token) << to_string(id) << " round " << round;
    // Same realization on both sides → members in identical order.
    ASSERT_EQ(ca.members, cb.members) << to_string(id) << " round " << round;
  }
}

class NetDifferential : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(NetDifferential, ZeroFaultFaultyNetworkIsBitIdenticalToSync) {
  Xoshiro256 rng(GetParam().seed);
  const MsgSystemConfig cfg = random_config(rng);

  MessageSystem sync{cfg};  // defaults to SyncNetwork
  MessageSystem faulty{cfg, std::make_unique<FaultyNetwork>(
                                NetFaultSpec{}, GetParam().seed)};
  EXPECT_TRUE(faulty.network().quiescent());

  // Random but identical crash schedule on both sides: an idle fault
  // schedule must not perturb even crash-recovery executions.
  for (int round = 0; round < 250; ++round) {
    for (const CellId id : sync.grid().all_cells()) {
      if (sync.cell(id).failed) {
        if (rng.bernoulli(0.05)) {
          sync.recover(id);
          faulty.recover(id);
        }
      } else if (rng.bernoulli(0.01)) {
        sync.fail(id);
        faulty.fail(id);
      }
    }
    sync.update();
    faulty.update();
    expect_bit_identical(sync, faulty, round);
  }
  // The idle schedule consumed no randomness and counted no faults.
  for (std::size_t f = 0; f < kNetFaultCount; ++f) {
    EXPECT_EQ(faulty.network().fault_count(static_cast<NetFault>(f)), 0u);
  }
  EXPECT_EQ(sync.network().total_messages(),
            faulty.network().total_messages());
}

class NetFaultProperty : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(NetFaultProperty, SafetyAndConservationHoldUnderRandomSchedules) {
  Xoshiro256 rng(GetParam().seed);
  const MsgSystemConfig cfg = random_config(rng);

  NetFaultSpec spec;
  spec.drop_prob = rng.uniform(0.0, 0.4);
  spec.dup_prob = rng.uniform(0.0, 0.2);
  spec.delay_prob = rng.uniform(0.0, 0.3);
  spec.max_delay_rounds = 1 + rng.below(3);
  if (rng.bernoulli(0.5)) {
    // Half the cases also script a partition through the grid interior.
    Grid grid(cfg.side);
    const std::uint64_t start = 30 + rng.below(40);
    NetPartition part{start, start + 10 + rng.below(40), CellMask(grid)};
    const auto split = static_cast<std::int32_t>(1 + rng.below(
        static_cast<std::uint64_t>(cfg.side - 1)));
    for (const CellId id : grid.all_cells())
      if (id.j < split) part.side.set(id);
    spec.partitions = {part};
  }
  const bool with_crashes = rng.bernoulli(0.5);

  MessageSystem msg{cfg, std::make_unique<FaultyNetwork>(
                             spec, GetParam().seed * 977 + 1)};

  for (int round = 0; round < 300; ++round) {
    if (with_crashes) {
      for (const CellId id : msg.grid().all_cells()) {
        if (msg.cell(id).failed) {
          if (rng.bernoulli(0.05)) msg.recover(id);
        } else if (rng.bernoulli(0.01)) {
          msg.fail(id);
        }
      }
    }
    msg.update();
    const auto violations = msg_audit::check_all(msg);
    ASSERT_TRUE(violations.empty())
        << "round " << round << ": " << violations.front().predicate << " at "
        << to_string(violations.front().cell) << " — "
        << violations.front().detail;
  }
  // The adversary actually fired on stochastic schedules.
  if (spec.stochastic()) {
    std::uint64_t total_faults = 0;
    for (std::size_t f = 0; f < kNetFaultCount; ++f)
      total_faults += msg.network().fault_count(static_cast<NetFault>(f));
    EXPECT_GT(total_faults, 0u);
  }
}

TEST(NetStabilization, RoutingReconvergesAfterFaultsCease) {
  MsgSystemConfig cfg;
  cfg.side = 6;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 5};

  NetFaultSpec spec;
  spec.drop_prob = 0.3;
  spec.dup_prob = 0.1;
  spec.delay_prob = 0.2;
  spec.max_delay_rounds = 3;
  spec.last_fault_round = 80;
  MessageSystem msg{cfg, std::make_unique<FaultyNetwork>(spec, 42)};

  // Fault era: safety holds throughout (the property suite's claim, here
  // just spot-checked on the scripted run).
  for (int round = 0; round <= 80; ++round) {
    msg.update();
    ASSERT_TRUE(msg_audit::check_all(msg).empty()) << "round " << round;
  }
  // Let the delay buffer drain (max 3 rounds), then require quiescence.
  for (int round = 0; round < 4; ++round) msg.update();
  ASSERT_TRUE(msg.network().quiescent());

  // Lemma 6 with the repo's 4·N² slack: dist/next reach the BFS
  // reference within 144 rounds of quiescence — and stay there.
  const Grid grid(cfg.side);
  const auto rho = path_distances(grid, CellMask::all(grid), cfg.target);
  const auto routing_agrees = [&] {
    for (const CellId id : grid.all_cells()) {
      const Dist expect = rho[grid.index_of(id)];
      if (msg.cell(id).dist != expect) return false;
      if (id != cfg.target) {
        const OptCellId next = msg.cell(id).next;
        if (!next.has_value()) return false;
        if (rho[grid.index_of(*next)].plus_one() != expect) return false;
      }
    }
    return true;
  };
  bool ok = routing_agrees();
  for (int k = 0; k < 4 * 36 && !ok; ++k) {
    msg.update();
    ok = routing_agrees();
  }
  ASSERT_TRUE(ok);
  for (int k = 0; k < 30; ++k) {
    msg.update();
    EXPECT_TRUE(routing_agrees()) << "diverged at round " << msg.round();
    ASSERT_TRUE(msg_audit::check_all(msg).empty());
  }

  // Throughput resumes: arrivals strictly increase over a post-quiescence
  // window, and nothing is left stranded in flight.
  const std::uint64_t before = msg.total_arrivals();
  for (int k = 0; k < 100; ++k) msg.update();
  EXPECT_GT(msg.total_arrivals(), before);
  EXPECT_TRUE(msg.in_flight_entities().empty());
}

TEST(NetStabilization, FlowResumesAfterPartitionHeals) {
  MsgSystemConfig cfg;
  cfg.side = 5;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 4};

  // Cut the source half from the target half for rounds [20, 60).
  const Grid grid(cfg.side);
  NetPartition part{20, 60, CellMask(grid)};
  for (const CellId id : grid.all_cells())
    if (id.j < 3) part.side.set(id);
  NetFaultSpec spec;
  spec.partitions = {part};
  MessageSystem msg{cfg, std::make_unique<FaultyNetwork>(spec, 7)};

  std::uint64_t at_heal = 0;
  for (int round = 0; round < 260; ++round) {
    msg.update();
    ASSERT_TRUE(msg_audit::check_all(msg).empty()) << "round " << round;
    if (round == 120) {
      ASSERT_TRUE(msg.network().quiescent());
      at_heal = msg.total_arrivals();
    }
  }
  // The partition actually cut traffic, and flow resumed after healing.
  EXPECT_GT(msg.network().fault_count(NetFault::kPartitioned), 0u);
  EXPECT_GT(msg.total_arrivals(), at_heal);
}

// A targeted adversary for the grant round-stamp: every GrantAnnounce is
// withheld and re-delivered at the NEXT round's grant barrier, twice
// (a delayed copy plus a duplicate). All other payloads pass untouched.
class GrantReplayNetwork final : public NetworkModel {
 protected:
  void transmit(std::vector<Message>&& sent,
                std::vector<Message>& out) override {
    std::vector<Message> captured;
    for (Message& m : sent) {
      if (std::holds_alternative<GrantAnnounce>(m.payload)) {
        note_fault(NetFault::kDelayed, PayloadType::kGrant);
        note_fault(NetFault::kDuplicated, PayloadType::kGrant);
        captured.push_back(std::move(m));
      } else {
        out.push_back(std::move(m));
      }
    }
    if (!captured.empty()) {
      // The grant barrier: release the previous round's grants (stale by
      // exactly one round) and hold this round's.
      for (const Message& m : held_) {
        out.push_back(m);
        out.push_back(m);
      }
      held_ = std::move(captured);
    }
  }

 private:
  std::vector<Message> held_;
};

// The Move guard must read FRESH signal values (§II-B, message.hpp): a
// grant delayed — even by a single round, even delivered twice — expires
// by its round stamp and authorizes nothing. Under this adversary no
// transfer session can ever open: injections pile up at the source, no
// entity crosses any boundary, and every safety/conservation oracle
// holds throughout.
TEST(GrantReplayAdversary, StaleDuplicatedGrantsAuthorizeNothing) {
  MsgSystemConfig cfg;
  cfg.side = 4;
  cfg.params = Params(0.2, 0.1, 0.1);
  cfg.sources = {CellId{0, 0}};
  cfg.target = CellId{3, 3};
  MessageSystem msg{cfg, std::make_unique<GrantReplayNetwork>()};

  for (int round = 0; round < 40; ++round) {
    msg.update();
    const auto violations = msg_audit::check_all(msg);
    ASSERT_TRUE(violations.empty())
        << "round " << round << ": " << to_string(violations.front());
  }

  // Grants were issued and every delivered copy was discarded as expired.
  EXPECT_GT(msg.network().sent_count(PayloadType::kGrant), 0u);
  EXPECT_GT(msg.expired_grants(), 0u);
  // No session ever opened: not a single TransferBatch on the wire, no
  // arrivals, nothing in flight, and entities only where injected.
  EXPECT_EQ(msg.network().sent_count(PayloadType::kTransfer), 0u);
  EXPECT_EQ(msg.network().sent_count(PayloadType::kAck), 0u);
  EXPECT_EQ(msg.total_arrivals(), 0u);
  EXPECT_TRUE(msg.in_flight_entities().empty());
  EXPECT_GT(msg.total_injected(), 0u);
  for (const CellId id : msg.grid().all_cells()) {
    if (id != CellId{0, 0}) {
      EXPECT_TRUE(msg.cell(id).members.empty()) << to_string(id);
    }
  }
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t s = 1; s <= 48; ++s) cases.push_back({s});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetDifferential,
                         ::testing::ValuesIn(fuzz_cases()));
INSTANTIATE_TEST_SUITE_P(Seeds, NetFaultProperty,
                         ::testing::ValuesIn(fuzz_cases()));

}  // namespace
}  // namespace cellflow
