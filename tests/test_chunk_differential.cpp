// Chunked-vs-dense differential fuzzing (ISSUE 8 / DESIGN.md §12): the
// ChunkedSystem must be observationally identical to the dense System —
// same per-cell state, same counters, same Prometheus exposition — at
// every (engine, thread count, scheduler) combination, under randomized
// configurations and adversarial fail/recover churn that repeatedly
// targets parked regions. The dense serial active-set engine is the
// reference; a MessageSystem leg rides along on small grids so all three
// realizations stay pinned together. The §III-A safety oracles run on
// the reference every round.
//
// Seed layout: every 4th seed uses a multi-chunk side (33..40) so chunk
// borders, parking, and fault-in churn are actually exercised; the rest
// use the dense suite's 4..7 sides where the full per-cell compare is
// cheap enough to run every round.
#include <gtest/gtest.h>

#include <algorithm>

#include "chunk/chunked_system.hpp"
#include "core/predicates.hpp"
#include "core/system.hpp"
#include "msg/msg_system.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "snapshot/snapshot.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

struct FuzzCase {
  std::uint64_t seed;
};

void PrintTo(const FuzzCase& c, std::ostream* os) { *os << "seed=" << c.seed; }

class ChunkDifferential : public ::testing::TestWithParam<FuzzCase> {};

void expect_cells_equal(const System& dense, const chunk::ChunkedSystem& ck,
                        const char* leg, int round) {
  for (const CellId id : dense.grid().all_cells()) {
    const CellState& a = dense.cell(id);
    const CellState b = ck.cell(id);
    ASSERT_EQ(a.failed, b.failed)
        << leg << " " << to_string(id) << " round " << round;
    ASSERT_EQ(a.dist, b.dist)
        << leg << " " << to_string(id) << " round " << round;
    ASSERT_EQ(a.next, b.next)
        << leg << " " << to_string(id) << " round " << round;
    ASSERT_EQ(a.token, b.token)
        << leg << " " << to_string(id) << " round " << round;
    ASSERT_EQ(a.signal, b.signal)
        << leg << " " << to_string(id) << " round " << round;
    ASSERT_TRUE(std::equal(a.ne_prev.begin(), a.ne_prev.end(),
                           b.ne_prev.begin(), b.ne_prev.end()))
        << leg << " " << to_string(id) << " round " << round;
    ASSERT_EQ(a.members, b.members)
        << leg << " " << to_string(id) << " round " << round;
  }
}

TEST_P(ChunkDifferential, ChunkedMatchesDenseAndMessageRealizations) {
  const std::uint64_t seed = GetParam().seed;
  Xoshiro256 rng(seed);

  const bool multi_chunk = (seed % 4 == 0);
  const int side = multi_chunk ? 33 + static_cast<int>(rng.below(8))
                               : 4 + static_cast<int>(rng.below(4));
  const int rounds = multi_chunk ? 120 : 250;
  const double l = rng.uniform(0.1, 0.35);
  const double rs = rng.uniform(0.05, std::min(0.4, 0.95 - l));
  const double v = rng.uniform(0.05, l);
  const auto random_cell = [&] {
    return CellId{
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(side))),
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(side)))};
  };
  const CellId target = random_cell();
  CellId source = target;
  while (source == target) source = random_cell();

  SystemConfig sc;
  sc.side = side;
  sc.params = Params(l, rs, v);
  sc.target = target;
  sc.sources = {source};

  // Reference: dense, serial, active-set, §III-A oracles every round.
  System dense{sc};
  dense.set_parallel_policy(ParallelPolicy::serial());
  obs::MetricsRegistry dense_reg;
  dense.set_metrics(&dense_reg);

  // Chunked legs: serial/active-set (metrics-compared), parallel-2 with
  // the exhaustive scheduler, parallel-4 with active-set. Registries are
  // separate because the chunked engine exports under the same
  // realization label as the dense shared-variable engine.
  chunk::ChunkedSystem ck_serial{sc};
  ck_serial.set_parallel_policy(ParallelPolicy::serial());
  obs::MetricsRegistry chunk_reg;
  ck_serial.set_metrics(&chunk_reg);

  chunk::ChunkedSystem ck_serial_ex{sc};
  ck_serial_ex.set_parallel_policy(ParallelPolicy::serial());
  ck_serial_ex.set_round_scheduler(RoundScheduler::kExhaustive);

  chunk::ChunkedSystem ck_par2{sc};
  ck_par2.set_parallel_policy(ParallelPolicy::parallel(2));
  ck_par2.set_round_scheduler(RoundScheduler::kExhaustive);

  chunk::ChunkedSystem ck_par4{sc};
  ck_par4.set_parallel_policy(ParallelPolicy::parallel(4));

  // Message-passing leg on the small grids only (it is the slow engine;
  // the dense suite already pins it, here it anchors the three-way
  // equivalence per seed).
  const bool with_msg = side <= 8;
  MsgSystemConfig mc;
  mc.side = side;
  mc.params = Params(l, rs, v);
  mc.target = target;
  mc.sources = {source};
  MessageSystem msg{mc};

  for (int round = 0; round < rounds; ++round) {
    // Identical adversarial failure schedule on every leg. On the
    // multi-chunk sides this keeps faulting cells inside parked chunks,
    // exercising the park/unpark churn path.
    for (const CellId id : dense.grid().all_cells()) {
      if (dense.cell(id).failed) {
        if (rng.bernoulli(0.05)) {
          dense.recover(id);
          ck_serial.recover(id);
          ck_serial_ex.recover(id);
          ck_par2.recover(id);
          ck_par4.recover(id);
          if (with_msg) msg.recover(id);
        }
      } else if (rng.bernoulli(0.01)) {
        dense.fail(id);
        ck_serial.fail(id);
        ck_serial_ex.fail(id);
        ck_par2.fail(id);
        ck_par4.fail(id);
        if (with_msg) msg.fail(id);
      }
    }
    dense.update();
    ck_serial.update();
    ck_serial_ex.update();
    ck_par2.update();
    ck_par4.update();
    if (with_msg) msg.update();

    for (const Violation& v2 : check_all(dense)) {
      FAIL() << "round " << round << ": " << to_string(v2);
    }

    ASSERT_EQ(dense.total_arrivals(), ck_serial.total_arrivals())
        << "round " << round;
    ASSERT_EQ(dense.total_injected(), ck_serial.total_injected())
        << "round " << round;

    const std::uint64_t want = snapshot::state_digest(dense);
    if (snapshot::state_digest(ck_serial) != want) {
      expect_cells_equal(dense, ck_serial, "serial", round);
      FAIL() << "serial digest diverged without a cell diff, round "
             << round;
    }
    if (snapshot::state_digest(ck_serial_ex) != want) {
      expect_cells_equal(dense, ck_serial_ex, "serial-exhaustive", round);
      FAIL() << "serial-exhaustive digest diverged without a cell diff, "
                "round " << round;
    }
    if (snapshot::state_digest(ck_par2) != want) {
      expect_cells_equal(dense, ck_par2, "par2-exhaustive", round);
      FAIL() << "par2 digest diverged without a cell diff, round " << round;
    }
    if (snapshot::state_digest(ck_par4) != want) {
      expect_cells_equal(dense, ck_par4, "par4", round);
      FAIL() << "par4 digest diverged without a cell diff, round " << round;
    }
    if (!multi_chunk) {
      // The digest is the cheap O(N²) equality; on the small sides also
      // run the field-by-field compare so a future digest-collision bug
      // cannot mask a divergence.
      expect_cells_equal(dense, ck_serial, "serial", round);
    }

    if (with_msg) {
      ASSERT_EQ(dense.total_arrivals(), msg.total_arrivals())
          << "round " << round;
      for (const CellId id : dense.grid().all_cells()) {
        const CellState& a = dense.cell(id);
        const CellState& b = msg.cell(id);
        ASSERT_EQ(a.dist, b.dist) << to_string(id) << " round " << round;
        ASSERT_EQ(a.next, b.next) << to_string(id) << " round " << round;
        ASSERT_EQ(a.signal, b.signal) << to_string(id) << " round " << round;
        auto sa = a.members;
        auto sb = b.members;
        const auto by_id = [](const Entity& x, const Entity& y) {
          return x.id < y.id;
        };
        std::sort(sa.begin(), sa.end(), by_id);
        std::sort(sb.begin(), sb.end(), by_id);
        ASSERT_EQ(sa, sb) << to_string(id) << " round " << round;
      }
    }
  }

  // The Prometheus expositions must be byte-identical: same families,
  // same labels, same counter values — the `_count` acceptance gate.
  EXPECT_EQ(obs::to_prometheus(dense_reg), obs::to_prometheus(chunk_reg));
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t s = 1; s <= 48; ++s) cases.push_back({s});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkDifferential,
                         ::testing::ValuesIn(fuzz_cases()));

}  // namespace
}  // namespace cellflow
