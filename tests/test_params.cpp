// Tests for the parameter constraints of §II-B.
#include "core/params.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace cellflow {
namespace {

TEST(Params, PaperDefaultsAreFeasible) {
  // Figure 7: l = 0.25, rs ∈ [0.05, 0.7], v ∈ {0.05, 0.1, 0.2, 0.25}.
  EXPECT_NO_THROW(Params(0.25, 0.05, 0.1));
  EXPECT_NO_THROW(Params(0.25, 0.7, 0.25));
  // Figure 8 configs.
  EXPECT_NO_THROW(Params(0.2, 0.05, 0.2));
  EXPECT_NO_THROW(Params(0.1, 0.05, 0.05));
  // Figure 9 config.
  EXPECT_NO_THROW(Params(0.2, 0.05, 0.2));
}

TEST(Params, AccessorsAndDerivedSpacing) {
  const Params p(0.25, 0.05, 0.1);
  EXPECT_DOUBLE_EQ(p.entity_length(), 0.25);
  EXPECT_DOUBLE_EQ(p.safety_gap(), 0.05);
  EXPECT_DOUBLE_EQ(p.velocity(), 0.1);
  EXPECT_DOUBLE_EQ(p.center_spacing(), 0.3);
}

TEST(Params, VelocityEqualToLengthAccepted) {
  // Figure 7 runs v = l = 0.25; see Params::feasible for the rationale.
  EXPECT_NO_THROW(Params(0.25, 0.05, 0.25));
}

TEST(Params, VelocityAboveLengthRejected) {
  EXPECT_THROW(Params(0.2, 0.05, 0.25), ContractViolation);
}

TEST(Params, EntityMustFitWithGap) {
  // rs + l must be < 1.
  EXPECT_THROW(Params(0.5, 0.5, 0.1), ContractViolation);
  EXPECT_THROW(Params(0.25, 0.75, 0.1), ContractViolation);
  EXPECT_NO_THROW(Params(0.25, 0.74, 0.1));
}

TEST(Params, NonPositiveValuesRejected) {
  EXPECT_THROW(Params(0.25, 0.05, 0.0), ContractViolation);
  EXPECT_THROW(Params(0.25, 0.05, -0.1), ContractViolation);
  EXPECT_THROW(Params(0.25, 0.0, 0.1), ContractViolation);
  EXPECT_THROW(Params(0.0, 0.05, 0.0), ContractViolation);
}

TEST(Params, EntityLengthOneRejected) {
  EXPECT_THROW(Params(1.0, 0.05, 0.1), ContractViolation);
}

TEST(Params, FeasibleMirrorsConstructor) {
  EXPECT_TRUE(Params::feasible(0.25, 0.05, 0.1));
  EXPECT_TRUE(Params::feasible(0.25, 0.05, 0.25));
  EXPECT_FALSE(Params::feasible(0.25, 0.05, 0.3));
  EXPECT_FALSE(Params::feasible(0.25, 0.75, 0.1));
  EXPECT_FALSE(Params::feasible(0.25, -0.1, 0.1));
}

TEST(Params, ToStringMentionsAllValues) {
  const std::string s = Params(0.25, 0.05, 0.1).to_string();
  EXPECT_NE(s.find("l=0.25"), std::string::npos);
  EXPECT_NE(s.find("rs=0.05"), std::string::npos);
  EXPECT_NE(s.find("v=0.1"), std::string::npos);
  EXPECT_NE(s.find("d=0.3"), std::string::npos);
}

TEST(Params, EqualityByValue) {
  EXPECT_EQ(Params(0.25, 0.05, 0.1), Params(0.25, 0.05, 0.1));
  EXPECT_NE(Params(0.25, 0.05, 0.1), Params(0.25, 0.05, 0.2));
}

}  // namespace
}  // namespace cellflow
