// Tests for the statistics substrate (RunningStats, Histogram, series
// helpers) against closed-form expectations.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

TEST(RunningStats, EmptyIsNeutral) {
  const RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n−1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  Xoshiro256 rng(7);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int k = 0; k < 500; ++k) {
    const double x = rng.uniform(-3.0, 9.0);
    all.add(x);
    (k % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  Xoshiro256 rng(9);
  for (int k = 0; k < 10; ++k) small.add(rng.uniform01());
  for (int k = 0; k < 1000; ++k) large.add(rng.uniform01());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, CountsFallInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);   // bin 0
  h.add(3.0);   // bin 1
  h.add(3.5);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Xoshiro256 rng(21);
  for (int k = 0; k < 50000; ++k) h.add(rng.uniform01());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantilePreconditions) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.5);
  EXPECT_THROW((void)h.quantile(1.5), ContractViolation);
  EXPECT_THROW((void)h.quantile(-0.1), ContractViolation);
}

TEST(Histogram, QuantileOfEmptyHistogramIsRangeLowerBound) {
  // Exporters may ask for quantiles before any sample lands; that must
  // not abort the process.
  Histogram h(2.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(Histogram, QuantileZeroSkipsEmptyLeadingBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(6.5);  // bin 3: [6, 8)
  h.add(7.0);
  // q=0 is the left edge of the first nonempty bin, not the range's
  // lower bound; q=1 the right edge of the last nonempty bin.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 6.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
}

TEST(Histogram, QuantileMatchesSortedSampleReference) {
  // Property check against the order-statistics reference: for bins this
  // fine every sample sits in its own bin neighborhood, so the
  // histogram's within-bin interpolation must land within one bin width
  // of the k-th order statistic.
  Xoshiro256 rng(77);
  Histogram h(0.0, 1.0, 1000);
  std::vector<double> samples;
  for (int k = 0; k < 2000; ++k) {
    // A lumpy distribution with empty leading/trailing bins: mass only
    // in [0.3, 0.4) and [0.7, 0.9).
    const double u = rng.uniform01();
    const double x = u < 0.5 ? 0.3 + 0.1 * rng.uniform01()
                             : 0.7 + 0.2 * rng.uniform01();
    samples.push_back(x);
    h.add(x);
  }
  std::sort(samples.begin(), samples.end());
  const double bin_width = 1.0 / 1000.0;
  for (const double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1));
    EXPECT_NEAR(h.quantile(q), samples[rank], 2.0 * bin_width)
        << "q=" << q;
  }
}

TEST(Histogram, InvalidConstructionRejected) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, AsciiRenderingMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.to_ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('2'), std::string::npos);
}

TEST(SeriesHelpers, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of(std::vector<double>{7.0}), 0.0);
}

TEST(SeriesHelpers, OlsSlopeExactLine) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys = {1.0, 3.0, 5.0, 7.0};  // y = 2x + 1
  EXPECT_NEAR(ols_slope(xs, ys), 2.0, 1e-12);
}

TEST(SeriesHelpers, OlsSlopeSignDetectsTrends) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> down = {9.0, 7.5, 6.9, 5.0, 4.2};
  EXPECT_LT(ols_slope(xs, down), 0.0);
}

TEST(SeriesHelpers, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys = {5.0, 6.0, 7.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8.0, 7.0, 6.0, 5.0};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(SeriesHelpers, DegenerateInputsRejected) {
  const std::vector<double> xs = {1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0};
  EXPECT_THROW((void)ols_slope(xs, ys), ContractViolation);
  EXPECT_THROW((void)pearson(ys, xs), ContractViolation);
  EXPECT_THROW((void)ols_slope(std::vector<double>{1.0},
                               std::vector<double>{1.0}),
               ContractViolation);
}

}  // namespace
}  // namespace cellflow
