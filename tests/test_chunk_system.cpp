// Engine-level tests for ChunkedSystem (DESIGN.md §12): observational
// parity with the dense System stepped in lockstep (same config, same
// seeds, same external transitions), the quiescence-driven park
// lifecycle (hysteresis, pinning, fault-in on every external mutation),
// scheduler switches, and the stateful-choose serial pin. The broad
// randomized sweep across engines/schedulers/realizations lives in
// test_chunk_differential.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>

#include "chunk/chunked_system.hpp"
#include "core/choose.hpp"
#include "core/source.hpp"
#include "core/system.hpp"
#include "snapshot/snapshot.hpp"

namespace cellflow {
namespace {

SystemConfig column_config(int side) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, side - 1};
  return cfg;
}

SystemConfig closed_config(int side, CellId target) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {};
  cfg.target = target;
  return cfg;
}

chunk::ChunkedSystem make_closed_chunked(int side, CellId target) {
  return chunk::ChunkedSystem(closed_config(side, target), nullptr,
                              std::make_unique<NullSource>());
}

System make_closed_dense(int side, CellId target) {
  return System(closed_config(side, target), nullptr,
                std::make_unique<NullSource>());
}

/// Full per-cell state equality, dense vs chunked, with localization.
void expect_same_state(const System& dense, const chunk::ChunkedSystem& ck,
                       int round) {
  ASSERT_EQ(dense.round(), ck.round()) << "round " << round;
  ASSERT_EQ(dense.total_arrivals(), ck.total_arrivals()) << "round " << round;
  ASSERT_EQ(dense.total_injected(), ck.total_injected()) << "round " << round;
  for (const CellId id : dense.grid().all_cells()) {
    const CellState& a = dense.cell(id);
    const CellState b = ck.cell(id);
    ASSERT_EQ(a.failed, b.failed) << to_string(id) << " round " << round;
    ASSERT_EQ(a.dist, b.dist) << to_string(id) << " round " << round;
    ASSERT_EQ(a.next, b.next) << to_string(id) << " round " << round;
    ASSERT_EQ(a.token, b.token) << to_string(id) << " round " << round;
    ASSERT_EQ(a.signal, b.signal) << to_string(id) << " round " << round;
    ASSERT_TRUE(std::equal(a.ne_prev.begin(), a.ne_prev.end(),
                           b.ne_prev.begin(), b.ne_prev.end()))
        << to_string(id) << " round " << round;
    ASSERT_EQ(a.members, b.members) << to_string(id) << " round " << round;
  }
}

/// Per-round event-stream equality (the canonicalized order contract).
void expect_same_events(const RoundEvents& a, const RoundEvents& b,
                        int round) {
  ASSERT_EQ(a.round, b.round) << "round " << round;
  ASSERT_EQ(a.moved, b.moved) << "round " << round;
  ASSERT_EQ(a.blocked, b.blocked) << "round " << round;
  ASSERT_EQ(a.injected, b.injected) << "round " << round;
  ASSERT_EQ(a.arrivals, b.arrivals) << "round " << round;
  ASSERT_EQ(a.transfers.size(), b.transfers.size()) << "round " << round;
  for (std::size_t k = 0; k < a.transfers.size(); ++k) {
    ASSERT_EQ(a.transfers[k].entity, b.transfers[k].entity)
        << "round " << round << " transfer " << k;
    ASSERT_EQ(a.transfers[k].from, b.transfers[k].from)
        << "round " << round << " transfer " << k;
    ASSERT_EQ(a.transfers[k].to, b.transfers[k].to)
        << "round " << round << " transfer " << k;
    ASSERT_EQ(a.transfers[k].consumed, b.transfers[k].consumed)
        << "round " << round << " transfer " << k;
  }
}

TEST(ChunkSystem, MatchesDenseOnSingleChunkGrid) {
  // Side 6 fits one chunk: pins the engine mechanics (phases, events,
  // counters) without any cross-chunk machinery in play.
  System dense(column_config(6));
  dense.set_parallel_policy(ParallelPolicy::serial());
  chunk::ChunkedSystem ck(column_config(6));
  ck.set_parallel_policy(ParallelPolicy::serial());
  for (int r = 0; r < 300; ++r) {
    dense.update();
    ck.update();
    expect_same_state(dense, ck, r);
    expect_same_events(dense.last_events(), ck.last_events(), r);
  }
}

TEST(ChunkSystem, MatchesDenseAcrossChunkBorders) {
  // Side 40 = 2×2 chunks; the column-1 flow crosses the j=31/32 chunk
  // border every round, exercising boundary dist reads, cross-chunk
  // transfers, and cross-chunk NEPrev/token/signal references.
  System dense(column_config(40));
  dense.set_parallel_policy(ParallelPolicy::serial());
  chunk::ChunkedSystem ck(column_config(40));
  ck.set_parallel_policy(ParallelPolicy::serial());
  for (int r = 0; r < 200; ++r) {
    dense.update();
    ck.update();
    ASSERT_EQ(snapshot::state_digest(dense), snapshot::state_digest(ck))
        << "round " << r;
    expect_same_events(dense.last_events(), ck.last_events(), r);
    if (r % 25 == 0) expect_same_state(dense, ck, r);
  }
}

TEST(ChunkSystem, ParksQuiescentChunksAndStaysBitIdentical) {
  // Closed world, 3×3 chunks, target in the center chunk. Once the
  // routing wave has stabilized and nothing moves, every unpinned chunk
  // must park; the dense twin proves the observable state never drifts.
  const CellId target{48, 48};
  System dense = make_closed_dense(96, target);
  chunk::ChunkedSystem ck = make_closed_chunked(96, target);
  for (int r = 0; r < 130; ++r) {
    dense.update();
    ck.update();
  }
  EXPECT_EQ(ck.store().parked_count(), ck.store().chunk_count() - 1)
      << "everything but the pinned target chunk parks";
  EXPECT_EQ(ck.store().live_count(), 1u);
  EXPECT_GT(ck.store().stats().parked_total, 0u);
  expect_same_state(dense, ck, 130);
  EXPECT_EQ(snapshot::state_digest(dense), snapshot::state_digest(ck));
}

TEST(ChunkSystem, FailIntoParkedRegionFaultsChunkBackIn) {
  const CellId target{48, 48};
  System dense = make_closed_dense(96, target);
  chunk::ChunkedSystem ck = make_closed_chunked(96, target);
  for (int r = 0; r < 130; ++r) {
    dense.update();
    ck.update();
  }
  const CellId victim{5, 5};  // deep inside a parked corner chunk
  ASSERT_EQ(ck.store().state(ck.store().layout().chunk_of(victim)),
            chunk::ChunkedCellStore::State::kParked);

  dense.fail(victim);
  ck.fail(victim);
  EXPECT_TRUE(ck.store().is_live(ck.store().layout().chunk_of(victim)));
  for (int r = 0; r < 60; ++r) {
    dense.update();
    ck.update();
    ASSERT_EQ(snapshot::state_digest(dense), snapshot::state_digest(ck))
        << "round " << r << " after fail";
  }
  dense.recover(victim);
  ck.recover(victim);
  for (int r = 0; r < 60; ++r) {
    dense.update();
    ck.update();
    ASSERT_EQ(snapshot::state_digest(dense), snapshot::state_digest(ck))
        << "round " << r << " after recover";
  }
  expect_same_state(dense, ck, 250);
}

TEST(ChunkSystem, CorruptionInParkedRegionIsRepairedIdentically) {
  // corrupt_control_state targeting a parked chunk must fault it in with
  // the exact summarized state, apply the corruption, and re-arm — the
  // self-stabilization transcript must match the dense engine's.
  const CellId target{48, 48};
  System dense = make_closed_dense(96, target);
  chunk::ChunkedSystem ck = make_closed_chunked(96, target);
  for (int r = 0; r < 130; ++r) {
    dense.update();
    ck.update();
  }
  const CellId victim{90, 5};
  ASSERT_FALSE(ck.store().is_live(ck.store().layout().chunk_of(victim)));

  // A lying dist (too small) plus a bogus next pointer: Route must
  // propagate the repair outward over several rounds.
  dense.corrupt_control_state(victim, Dist::finite(1), CellId{90, 6},
                              std::nullopt, std::nullopt);
  ck.corrupt_control_state(victim, Dist::finite(1), CellId{90, 6},
                           std::nullopt, std::nullopt);
  EXPECT_TRUE(ck.store().is_live(ck.store().layout().chunk_of(victim)));
  // The lying low dist spreads before the repair wave counts it back up
  // (§III-B self-stabilization), so give the repair O(diameter) rounds.
  for (int r = 0; r < 280; ++r) {
    dense.update();
    ck.update();
    ASSERT_EQ(snapshot::state_digest(dense), snapshot::state_digest(ck))
        << "round " << r << " after corruption";
  }
  // Repaired and re-quiescent: the perturbed chunk parks again.
  EXPECT_EQ(ck.store().parked_count(), ck.store().chunk_count() - 1);
}

TEST(ChunkSystem, ReparkWaitsOutTheHysteresis) {
  const CellId target{48, 48};
  chunk::ChunkedSystem ck = make_closed_chunked(96, target);
  for (int r = 0; r < 130; ++r) ck.update();
  ASSERT_EQ(ck.store().parked_count(), ck.store().chunk_count() - 1);

  // Perturb a parked corner; it must stay live for at least
  // kParkHysteresis rounds after re-quiescing, then park again.
  const CellId victim{5, 90};
  ck.fail(victim);
  ck.recover(victim);
  const std::size_t q = ck.store().layout().chunk_of(victim);
  ASSERT_TRUE(ck.store().is_live(q));
  int rounds_live = 0;
  while (ck.store().is_live(q)) {
    ck.update();
    ++rounds_live;
    ASSERT_LE(rounds_live, 200) << "perturbed chunk never re-parked";
  }
  EXPECT_GE(rounds_live, static_cast<int>(chunk::kParkHysteresis));
}

TEST(ChunkSystem, ExhaustiveSchedulerMaterializesEverything) {
  const CellId target{48, 48};
  System dense = make_closed_dense(96, target);
  chunk::ChunkedSystem ck = make_closed_chunked(96, target);
  for (int r = 0; r < 130; ++r) {
    dense.update();
    ck.update();
  }
  ASSERT_LT(ck.store().live_count(), ck.store().chunk_count());

  dense.set_round_scheduler(RoundScheduler::kExhaustive);
  ck.set_round_scheduler(RoundScheduler::kExhaustive);
  EXPECT_EQ(ck.store().live_count(), ck.store().chunk_count());
  for (int r = 0; r < 20; ++r) {
    dense.update();
    ck.update();
    ASSERT_EQ(snapshot::state_digest(dense), snapshot::state_digest(ck));
    ASSERT_EQ(ck.store().live_count(), ck.store().chunk_count())
        << "exhaustive mode must never park";
  }

  dense.set_round_scheduler(RoundScheduler::kActiveSet);
  ck.set_round_scheduler(RoundScheduler::kActiveSet);
  for (int r = 0; r < 40; ++r) {
    dense.update();
    ck.update();
    ASSERT_EQ(snapshot::state_digest(dense), snapshot::state_digest(ck));
  }
  EXPECT_EQ(ck.store().parked_count(), ck.store().chunk_count() - 1)
      << "switching back to active-set resumes parking";
}

TEST(ChunkSystem, ParallelEngineMatchesSerialBitIdentically) {
  // The chunk is the shard unit; every thread count must reproduce the
  // serial transcript exactly (CLAUDE.md parallel-engine invariant).
  chunk::ChunkedSystem serial(column_config(40));
  serial.set_parallel_policy(ParallelPolicy::serial());
  chunk::ChunkedSystem par2(column_config(40));
  par2.set_parallel_policy(ParallelPolicy::parallel(2));
  chunk::ChunkedSystem par7(column_config(40));
  par7.set_parallel_policy(ParallelPolicy::parallel(7));
  for (int r = 0; r < 150; ++r) {
    serial.update();
    par2.update();
    par7.update();
    const std::uint64_t want = snapshot::state_digest(serial);
    ASSERT_EQ(want, snapshot::state_digest(par2)) << "round " << r;
    ASSERT_EQ(want, snapshot::state_digest(par7)) << "round " << r;
    expect_same_events(serial.last_events(), par2.last_events(), r);
    expect_same_events(serial.last_events(), par7.last_events(), r);
  }
}

TEST(ChunkSystem, StatefulChoosePolicyPinsSerialSweep) {
  // "random" choose is stateful (not concurrent-safe): the chunked engine
  // must fall back to the global row-major serial Signal sweep so the
  // policy sees the identical call sequence as the dense serial loop —
  // at every thread count.
  System dense(column_config(40), make_choose_policy("random", 7));
  dense.set_parallel_policy(ParallelPolicy::serial());
  chunk::ChunkedSystem ck(column_config(40), make_choose_policy("random", 7));
  ck.set_parallel_policy(ParallelPolicy::parallel(4));
  for (int r = 0; r < 150; ++r) {
    dense.update();
    ck.update();
    ASSERT_EQ(snapshot::state_digest(dense), snapshot::state_digest(ck))
        << "round " << r;
  }
}

TEST(ChunkSystem, SeedAndInjectionMatchDense) {
  const CellId target{34, 34};
  System dense = make_closed_dense(40, target);
  chunk::ChunkedSystem ck = make_closed_chunked(40, target);
  // Seed into a virgin chunk: the chunk must fault in and the entity
  // must flow to the target exactly as in the dense engine. (Six hops
  // at v = 0.1 keeps the arrival inside the 200-round budget.)
  const CellId at{34, 28};
  const Vec2 center{34.5, 28.5};
  const EntityId da = dense.seed_entity(at, center);
  const EntityId ca = ck.seed_entity(at, center);
  EXPECT_EQ(da, ca);
  EXPECT_EQ(ck.entity_count(), 1u);
  for (int r = 0; r < 200; ++r) {
    dense.update();
    ck.update();
    ASSERT_EQ(snapshot::state_digest(dense), snapshot::state_digest(ck))
        << "round " << r;
  }
  EXPECT_EQ(ck.total_arrivals(), 1u);
  EXPECT_EQ(ck.entity_count(), 0u);
}

TEST(ChunkSystem, ResidentBytesTrackActiveChunks) {
  // 5×5 chunks, everything quiet: after the world parks, the store's
  // footprint must fall well below the all-live peak even with the
  // freelist retaining its buffers.
  const CellId target{80, 80};
  chunk::ChunkedSystem ck = make_closed_chunked(160, target);
  std::uint64_t peak = 0;
  for (int r = 0; r < 360; ++r) {
    ck.update();
    peak = std::max(peak, ck.store().resident_bytes());
  }
  EXPECT_EQ(ck.store().live_count(), 1u);
  EXPECT_LT(ck.store().resident_bytes(), peak / 2);
}

}  // namespace
}  // namespace cellflow
