// Tests for the §V relaxed-coupling extension (MovementRule::kCompacting):
// unit behavior of compact_move_step, preservation of every safety oracle,
// the independence property itself (entities in one cell moving different
// amounts), progress, and the throughput advantage over coupled movement.
#include <gtest/gtest.h>

#include "core/move.hpp"
#include "core/predicates.hpp"
#include "failure/failure_model.hpp"
#include "helpers.hpp"
#include "sim/observers.hpp"
#include "sim/simulator.hpp"

namespace cellflow {
namespace {

const Params kP(0.2, 0.1, 0.1);  // d = 0.3, v = 0.1
const CellId kSelf{2, 3};        // spans [2,3]×[3,4]

Entity at(double x, double y, std::uint64_t id = 0) {
  return Entity{EntityId{id}, Vec2{x, y}};
}

TEST(CompactMove, WithoutPermissionQueueClosesUpFlush) {
  // Single-lane queue heading east, blocked: the front packs flush
  // against the boundary, followers hold exactly d behind (after enough
  // rounds), nobody crosses.
  CompactionContext ctx;  // may_cross = false
  std::vector<Entity> members = {at(2.7, 3.5, 1), at(2.3, 3.5, 2)};
  for (int round = 0; round < 10; ++round) {
    auto r = compact_move_step(kSelf, CellId{3, 3}, std::move(members), kP, ctx);
    EXPECT_TRUE(r.crossed.empty());
    members = std::move(r.staying);
  }
  ASSERT_EQ(members.size(), 2u);
  // Front flush: px + l/2 = 3 → px = 2.9. Follower at 2.9 − d = 2.6.
  EXPECT_NEAR(members[0].center.x, 2.9, 1e-9);
  EXPECT_NEAR(members[1].center.x, 2.6, 1e-9);
}

TEST(CompactMove, IndependentDisplacements) {
  // The defining relaxation: one round in which the front (already
  // flush) cannot move but the follower still advances.
  CompactionContext ctx;
  const auto r = compact_move_step(
      kSelf, CellId{3, 3}, {at(2.9, 3.5, 1), at(2.2, 3.5, 2)}, kP, ctx);
  ASSERT_EQ(r.staying.size(), 2u);
  EXPECT_NEAR(r.staying[0].center.x, 2.9, 1e-9);  // front: 0 displacement
  EXPECT_NEAR(r.staying[1].center.x, 2.3, 1e-9);  // follower: full v
}

TEST(CompactMove, LaneSpacingNeverBelowD) {
  CompactionContext ctx;
  // Follower only v short of the d-gap: it may close up to exactly d.
  const auto r = compact_move_step(
      kSelf, CellId{3, 3}, {at(2.9, 3.5, 1), at(2.55, 3.5, 2)}, kP, ctx);
  ASSERT_EQ(r.staying.size(), 2u);
  EXPECT_NEAR(r.staying[0].center.x - r.staying[1].center.x, 0.3, 1e-9);
}

TEST(CompactMove, PerpendicularSeparatedLanesAreIndependent) {
  // Two entities y-separated by ≥ d: they are different lanes, so the
  // rear one is NOT held back by the front one.
  CompactionContext ctx;
  const auto r = compact_move_step(
      kSelf, CellId{3, 3}, {at(2.9, 3.2, 1), at(2.85, 3.6, 2)}, kP, ctx);
  ASSERT_EQ(r.staying.size(), 2u);
  EXPECT_NEAR(r.staying[1].center.x, 2.9, 1e-9);  // advanced to flush
}

TEST(CompactMove, WithPermissionFrontCrossesFollowerAdvances) {
  CompactionContext ctx;
  ctx.may_cross = true;
  const auto r = compact_move_step(
      kSelf, CellId{3, 3}, {at(2.9, 3.5, 1), at(2.6, 3.5, 2)}, kP, ctx);
  ASSERT_EQ(r.crossed.size(), 1u);
  EXPECT_EQ(r.crossed[0].id, EntityId{1});
  EXPECT_DOUBLE_EQ(r.crossed[0].center.x, 3.1);  // flush entry placement
  ASSERT_EQ(r.staying.size(), 1u);
  EXPECT_NEAR(r.staying[0].center.x, 2.7, 1e-9);  // full v
}

TEST(CompactMove, PromisedStripIsRespected) {
  // The cell's own signal promises the east strip (toward ⟨3,3⟩) while
  // its entities also move east: compaction must stop at the strip edge
  // (px + l/2 ≤ 3 − d → px ≤ 2.6) even though the boundary flush cap
  // (2.9) would allow more.
  CompactionContext ctx;
  ctx.promised_strip = Direction::kEast;
  const auto r = compact_move_step(kSelf, CellId{3, 3}, {at(2.55, 3.5)},
                                   kP, ctx);
  ASSERT_EQ(r.staying.size(), 1u);
  EXPECT_NEAR(r.staying[0].center.x, 2.6, 1e-9);
}

TEST(CompactMove, PerpendicularPromiseDoesNotConstrain) {
  CompactionContext ctx;
  ctx.promised_strip = Direction::kNorth;  // perpendicular to east motion
  const auto r = compact_move_step(kSelf, CellId{3, 3}, {at(2.55, 3.5)},
                                   kP, ctx);
  EXPECT_NEAR(r.staying[0].center.x, 2.65, 1e-9);  // full v
}

TEST(CompactMove, WorksInAllFourDirections) {
  CompactionContext ctx;
  // West: queue packs toward x = 2.
  auto w = compact_move_step(kSelf, CellId{1, 3}, {at(2.15, 3.5)}, kP, ctx);
  EXPECT_NEAR(w.staying[0].center.x, 2.1, 1e-9);  // flush at west boundary
  // North: py + l/2 ≤ 4 → py ≤ 3.9.
  auto n = compact_move_step(kSelf, CellId{2, 4}, {at(2.5, 3.85)}, kP, ctx);
  EXPECT_NEAR(n.staying[0].center.y, 3.9, 1e-9);
  // South: py − l/2 ≥ 3 → py ≥ 3.1.
  auto s = compact_move_step(kSelf, CellId{2, 2}, {at(2.5, 3.15)}, kP, ctx);
  EXPECT_NEAR(s.staying[0].center.y, 3.1, 1e-9);
}

// --- System-level ------------------------------------------------------

SystemConfig relaxed_config(int side) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = kP;
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, side - 1};
  cfg.movement_rule = MovementRule::kCompacting;
  return cfg;
}

TEST(RelaxedCoupling, AllSafetyOraclesHoldUnderLoad) {
  System sys{relaxed_config(6)};
  NoFailures none;
  Simulator sim(sys, none);
  SafetyMonitor safety;
  sim.add_observer(safety);
  sim.run(1500);
  EXPECT_TRUE(safety.clean()) << safety.report();
  EXPECT_GT(sys.total_arrivals(), 0u);
}

class RelaxedCouplingSafety : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RelaxedCouplingSafety, SafeUnderFailuresAndRecovery) {
  System sys{relaxed_config(6)};
  RandomFailRecover failures(0.03, 0.1, GetParam());
  Simulator sim(sys, failures);
  SafetyMonitor safety;
  sim.add_observer(safety);
  sim.run(2000);
  EXPECT_TRUE(safety.clean()) << safety.report();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelaxedCouplingSafety,
                         ::testing::Values(7u, 77u, 777u, 7777u));

TEST(RelaxedCoupling, IndependentMovementObservedInSystem) {
  // Find a round where two entities of the same cell moved by different
  // amounts — impossible under the coupled rule.
  System sys{relaxed_config(6)};
  std::vector<std::pair<EntityId, Vec2>> prev;
  bool independent_seen = false;
  for (int k = 0; k < 800 && !independent_seen; ++k) {
    prev.clear();
    for (const CellState& c : sys.cells())
      for (const Entity& e : c.members) prev.emplace_back(e.id, e.center);
    sys.update();
    for (const CellState& c : sys.cells()) {
      double first_delta = -1.0;
      for (const Entity& e : c.members) {
        const auto it = std::find_if(prev.begin(), prev.end(),
                                     [&](const auto& pe) {
                                       return pe.first == e.id;
                                     });
        if (it == prev.end()) continue;
        const double delta = l1_distance(e.center, it->second);
        if (first_delta < 0.0) {
          first_delta = delta;
        } else if (std::abs(delta - first_delta) > 1e-12) {
          independent_seen = true;
        }
      }
    }
  }
  EXPECT_TRUE(independent_seen);
}

TEST(RelaxedCoupling, ThroughputAtLeastCoupled) {
  auto run = [](MovementRule rule) {
    SystemConfig cfg;
    cfg.side = 8;
    cfg.params = Params(0.25, 0.05, 0.1);
    cfg.sources = {CellId{1, 0}};
    cfg.target = CellId{1, 7};
    cfg.movement_rule = rule;
    System sys{cfg};
    for (int k = 0; k < 2500; ++k) sys.update();
    return sys.total_arrivals();
  };
  const auto coupled = run(MovementRule::kCoupled);
  const auto relaxed = run(MovementRule::kCompacting);
  EXPECT_GE(relaxed + 5, coupled);  // at worst a rounding sliver below
  EXPECT_GT(relaxed, 0u);
}

TEST(RelaxedCoupling, ProgressAfterTransientFailure) {
  System sys{relaxed_config(6)};
  testing::run_rounds(sys, 100);
  sys.fail(CellId{1, 3});
  testing::run_rounds(sys, 100);
  sys.recover(CellId{1, 3});
  const std::uint64_t before = sys.total_arrivals();
  testing::run_rounds(sys, 600);
  EXPECT_GT(sys.total_arrivals(), before + 5);
}

TEST(RelaxedCoupling, HPredicateStillHoldsAtSignalPoint) {
  System sys{relaxed_config(6)};
  sys.set_phase_hook([](const System& s, UpdatePhase phase) {
    if (phase != UpdatePhase::kAfterSignal) return;
    ASSERT_FALSE(check_h_predicate(s).has_value()) << "round " << s.round();
  });
  testing::run_rounds(sys, 600);
}

}  // namespace
}  // namespace cellflow
