// Integration tests for the System automaton: construction, fail/recover
// semantics, the three-phase update, entity transfer, and consumption.
#include "core/system.hpp"

#include <gtest/gtest.h>

#include "core/predicates.hpp"
#include "helpers.hpp"
#include "util/check.hpp"

namespace cellflow {
namespace {

const Params kP(0.2, 0.1, 0.1);  // d = 0.3, v = 0.1

TEST(SystemInit, MatchesFigure3InitialState) {
  System sys = testing::make_column_system(4, kP);
  for (const CellId id : sys.grid().all_cells()) {
    const CellState& c = sys.cell(id);
    EXPECT_TRUE(c.members.empty());
    EXPECT_EQ(c.next, OptCellId{});
    EXPECT_EQ(c.token, OptCellId{});
    EXPECT_EQ(c.signal, OptCellId{});
    EXPECT_FALSE(c.failed);
    if (id == sys.target()) {
      EXPECT_EQ(c.dist, Dist::zero());
    } else {
      EXPECT_TRUE(c.dist.is_infinite());
    }
  }
  EXPECT_EQ(sys.round(), 0u);
  EXPECT_EQ(sys.total_arrivals(), 0u);
}

TEST(SystemInit, InvalidConfigRejected) {
  SystemConfig cfg;
  cfg.side = 4;
  cfg.target = CellId{5, 5};
  EXPECT_THROW(System{cfg}, ContractViolation);

  SystemConfig cfg2;
  cfg2.side = 4;
  cfg2.target = CellId{1, 3};
  cfg2.sources = {CellId{1, 3}};  // source == target
  EXPECT_THROW(System{cfg2}, ContractViolation);

  SystemConfig cfg3;
  cfg3.side = 4;
  cfg3.target = CellId{0, 0};
  cfg3.sources = {CellId{4, 0}};  // outside
  EXPECT_THROW(System{cfg3}, ContractViolation);
}

TEST(SystemRouting, DistancesConvergeToBfsReference) {
  System sys = testing::make_column_system(8, kP);
  // Manhattan diameter of the 8×8 grid from ⟨1,7⟩ is 13; give slack.
  ASSERT_TRUE(testing::run_until_routed(sys, 20));
  const auto rho = sys.reference_distances();
  for (const CellId id : sys.grid().all_cells())
    EXPECT_EQ(sys.cell(id).dist, rho[sys.grid().index_of(id)])
        << "at " << to_string(id);
}

TEST(SystemRouting, NextPointsDownhill) {
  System sys = testing::make_column_system(8, kP);
  ASSERT_TRUE(testing::run_until_routed(sys, 20));
  for (const CellId id : sys.grid().all_cells()) {
    if (id == sys.target()) {
      EXPECT_EQ(sys.cell(id).next, OptCellId{});
      continue;
    }
    const OptCellId next = sys.cell(id).next;
    ASSERT_TRUE(next.has_value()) << "at " << to_string(id);
    EXPECT_EQ(sys.cell(*next).dist.plus_one(), sys.cell(id).dist);
  }
}

TEST(SystemFail, SetsPaperMandatedValues) {
  System sys = testing::make_column_system(4, kP);
  testing::run_rounds(sys, 6);
  sys.fail(CellId{2, 2});
  const CellState& c = sys.cell(CellId{2, 2});
  EXPECT_TRUE(c.failed);
  EXPECT_TRUE(c.dist.is_infinite());
  EXPECT_EQ(c.next, OptCellId{});
  EXPECT_EQ(c.signal, OptCellId{});
}

TEST(SystemFail, FailedCellFreezesEntities) {
  System sys = testing::make_closed_system(4, kP, CellId{3, 3});
  const EntityId e = sys.seed_entity(CellId{1, 1}, Vec2{1.5, 1.5});
  sys.fail(CellId{1, 1});
  testing::run_rounds(sys, 20);
  const Entity* p = sys.cell(CellId{1, 1}).find(e);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->center, (Vec2{1.5, 1.5}));
}

TEST(SystemFail, IsIdempotent) {
  System sys = testing::make_column_system(4, kP);
  sys.fail(CellId{0, 0});
  sys.fail(CellId{0, 0});
  EXPECT_TRUE(sys.cell(CellId{0, 0}).failed);
}

TEST(SystemFail, FailedTargetPoisonsRouting) {
  System sys = testing::make_column_system(4, kP);
  ASSERT_TRUE(testing::run_until_routed(sys, 12));
  sys.fail(sys.target());
  // dist values now grow without bound (count-to-infinity); after many
  // rounds every cell's dist exceeds any previously-valid value.
  testing::run_rounds(sys, 30);
  for (const CellId id : sys.grid().all_cells()) {
    if (id == sys.target()) continue;
    const Dist d = sys.cell(id).dist;
    EXPECT_TRUE(d.is_infinite() || d.hops() > 13u) << to_string(id);
  }
}

TEST(SystemRecover, RestoresRoutingAnchor) {
  System sys = testing::make_column_system(4, kP);
  sys.fail(sys.target());
  testing::run_rounds(sys, 5);
  sys.recover(sys.target());
  EXPECT_FALSE(sys.cell(sys.target()).failed);
  EXPECT_EQ(sys.cell(sys.target()).dist, Dist::zero());
  ASSERT_TRUE(testing::run_until_routed(sys, 40));
}

TEST(SystemRecover, NonFailedCellIsNoOp) {
  System sys = testing::make_column_system(4, kP);
  testing::run_rounds(sys, 8);
  const Dist before = sys.cell(CellId{2, 2}).dist;
  sys.recover(CellId{2, 2});
  EXPECT_EQ(sys.cell(CellId{2, 2}).dist, before);
}

TEST(SystemRecover, OrdinaryCellComesBackBlank) {
  System sys = testing::make_column_system(4, kP);
  testing::run_rounds(sys, 8);
  sys.fail(CellId{2, 2});
  sys.recover(CellId{2, 2});
  const CellState& c = sys.cell(CellId{2, 2});
  EXPECT_FALSE(c.failed);
  EXPECT_TRUE(c.dist.is_infinite());
  EXPECT_EQ(c.next, OptCellId{});
}

TEST(SystemUpdate, EntityWalksColumnAndIsConsumed) {
  System sys = testing::make_closed_system(4, kP, CellId{1, 3});
  // Entity at bottom of ⟨1,0⟩; must travel ~3 cells to the target.
  sys.seed_entity(CellId{1, 0}, Vec2{1.5, 0.1});
  std::uint64_t rounds = 0;
  while (sys.total_arrivals() == 0 && rounds < 500) {
    sys.update();
    ++rounds;
  }
  EXPECT_EQ(sys.total_arrivals(), 1u);
  EXPECT_EQ(sys.entity_count(), 0u);
  // Crossing 3 boundaries plus ~3 cells of travel at v = 0.1 with signal
  // overhead: well under 150 rounds.
  EXPECT_LT(rounds, 150u);
}

TEST(SystemUpdate, ConsumedTransferIsFlagged) {
  System sys = testing::make_closed_system(3, kP, CellId{1, 2});
  sys.seed_entity(CellId{1, 1}, Vec2{1.5, 1.85});
  bool saw_consume = false;
  for (int k = 0; k < 100 && !saw_consume; ++k) {
    const RoundEvents& ev = sys.update();
    for (const TransferEvent& t : ev.transfers) {
      if (t.consumed) {
        saw_consume = true;
        EXPECT_EQ(t.to, (CellId{1, 2}));
        EXPECT_EQ(t.from, (CellId{1, 1}));
      }
    }
  }
  EXPECT_TRUE(saw_consume);
  EXPECT_EQ(sys.total_arrivals(), 1u);
}

TEST(SystemUpdate, NoMovementWithoutSignal) {
  System sys = testing::make_closed_system(3, kP, CellId{1, 2});
  const EntityId e = sys.seed_entity(CellId{1, 0}, Vec2{1.5, 0.5});
  // Fail the cell ahead: its signal presents as ⊥ forever, and routing
  // around it goes through column 0 or 2. Fail those too so the entity is
  // completely walled in.
  sys.fail(CellId{1, 1});
  sys.fail(CellId{0, 0});
  sys.fail(CellId{2, 0});
  testing::run_rounds(sys, 30);
  const Entity* p = sys.cell(CellId{1, 0}).find(e);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->center, (Vec2{1.5, 0.5}));
}

TEST(SystemUpdate, TransferPlacesFlushAtEntryEdge) {
  System sys = testing::make_closed_system(3, kP, CellId{2, 2});
  // Eastbound transfer from ⟨0,2⟩ to ⟨1,2⟩ (then onward): seed near the
  // east edge of ⟨0,2⟩.
  const EntityId e = sys.seed_entity(CellId{0, 2}, Vec2{0.85, 2.5});
  // Run until the entity first appears in ⟨1,2⟩.
  for (int k = 0; k < 60; ++k) {
    sys.update();
    if (const Entity* p = sys.cell(CellId{1, 2}).find(e)) {
      EXPECT_DOUBLE_EQ(p->center.x, 1.1);  // 1 + l/2
      EXPECT_DOUBLE_EQ(p->center.y, 2.5);
      return;
    }
  }
  FAIL() << "entity never transferred";
}

TEST(SystemUpdate, RoundCounterAdvances) {
  System sys = testing::make_column_system(3, kP);
  EXPECT_EQ(sys.round(), 0u);
  testing::run_rounds(sys, 7);
  EXPECT_EQ(sys.round(), 7u);
  EXPECT_EQ(sys.last_events().round, 6u);
}

TEST(SystemSeed, RejectsUnsafePlacement) {
  System sys = testing::make_closed_system(3, kP, CellId{2, 2});
  sys.seed_entity(CellId{0, 0}, Vec2{0.5, 0.5});
  // Within d = 0.3 on both axes of the first entity.
  EXPECT_THROW((void)sys.seed_entity(CellId{0, 0}, Vec2{0.6, 0.6}),
               ContractViolation);
  // Outside the Invariant-1 bounds (sticks over the cell edge).
  EXPECT_THROW((void)sys.seed_entity(CellId{0, 0}, Vec2{0.05, 0.5}),
               ContractViolation);
}

TEST(SystemSeed, AcceptsAxisSeparatedPlacement) {
  System sys = testing::make_closed_system(3, kP, CellId{2, 2});
  sys.seed_entity(CellId{0, 0}, Vec2{0.5, 0.5});
  // Same y, x separated by more than d: legal.
  EXPECT_NO_THROW((void)sys.seed_entity(CellId{0, 0}, Vec2{0.85, 0.5}));
}

TEST(SystemUpdate, TwoEntitiesPipelineThroughColumn) {
  System sys = testing::make_closed_system(4, kP, CellId{1, 3});
  sys.seed_entity(CellId{1, 0}, Vec2{1.5, 0.4});
  sys.seed_entity(CellId{1, 0}, Vec2{1.5, 0.1});
  std::uint64_t rounds = 0;
  while (sys.total_arrivals() < 2 && rounds < 800) {
    sys.update();
    ASSERT_FALSE(check_safe(sys).has_value());
    ++rounds;
  }
  EXPECT_EQ(sys.total_arrivals(), 2u);
}

TEST(SystemPhaseHook, FiresInOrder) {
  System sys = testing::make_column_system(3, kP);
  std::vector<UpdatePhase> phases;
  sys.set_phase_hook([&](const System&, UpdatePhase p) {
    phases.push_back(p);
  });
  sys.update();
  ASSERT_EQ(phases.size(), 4u);
  EXPECT_EQ(phases[0], UpdatePhase::kAfterRoute);
  EXPECT_EQ(phases[1], UpdatePhase::kAfterSignal);
  EXPECT_EQ(phases[2], UpdatePhase::kAfterMove);
  EXPECT_EQ(phases[3], UpdatePhase::kAfterInject);
}

TEST(SystemAliveMask, TracksFailures) {
  System sys = testing::make_column_system(3, kP);
  EXPECT_EQ(sys.alive_mask().count(), 9u);
  sys.fail(CellId{0, 0});
  sys.fail(CellId{2, 2});
  EXPECT_EQ(sys.alive_mask().count(), 7u);
  EXPECT_FALSE(sys.alive_mask().test(CellId{0, 0}));
  sys.recover(CellId{0, 0});
  EXPECT_EQ(sys.alive_mask().count(), 8u);
}

TEST(SystemTcMask, ReflectsWalls) {
  System sys = testing::make_column_system(4, kP);
  for (int j = 0; j < 4; ++j) sys.fail(CellId{2, j});
  const CellMask tc = sys.tc_mask();
  // Target ⟨1,3⟩; columns 0–1 connected (8 cells), column 3 cut off.
  EXPECT_TRUE(tc.test(CellId{0, 0}));
  EXPECT_FALSE(tc.test(CellId{3, 0}));
  EXPECT_EQ(tc.count(), 8u);
}

}  // namespace
}  // namespace cellflow
