// Unit tests for the chunk geometry (ChunkLayout) and the sparse cell
// store (ChunkedCellStore) in isolation — DESIGN.md §12. The engine-level
// behavior (quiescence proofs, parking decisions, phase-loop parity) is
// covered by test_chunk_system.cpp and test_chunk_differential.cpp; here
// we pin the storage layer's own contracts: geometry round-trips, the
// three-state lifecycle, lossless park/unpark, the immutable boundary
// summary, and the encodability guard.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chunk/chunked_store.hpp"
#include "obs/alloc_stats.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace cellflow::chunk {
namespace {

TEST(ChunkLayout, GeometryRoundTripsOnEverySide) {
  for (const int side : {1, 5, 31, 32, 33, 64, 100}) {
    const ChunkLayout layout(side);
    ASSERT_EQ(layout.chunks_x(), (side + kChunkSide - 1) / kChunkSide);

    std::size_t covered = 0;
    for (std::size_t q = 0; q < layout.chunk_count(); ++q) {
      covered += layout.cells_in(q);
    }
    ASSERT_EQ(covered, static_cast<std::size_t>(side) *
                           static_cast<std::size_t>(side))
        << "side " << side;

    for (int j = 0; j < side; ++j) {
      for (int i = 0; i < side; ++i) {
        const CellId id{i, j};
        const std::size_t q = layout.chunk_of(id);
        const ChunkLayout::Rect r = layout.rect_of(q);
        ASSERT_TRUE(id.i >= r.i0 && id.i < r.i0 + r.w);
        ASSERT_TRUE(id.j >= r.j0 && id.j < r.j0 + r.h);
        ASSERT_EQ(layout.cell_at(q, layout.slot_of(id)), id)
            << "side " << side << " cell " << to_string(id);
      }
    }
  }
}

TEST(ChunkLayout, EdgeChunksAreClipped) {
  const ChunkLayout layout(100);  // 4×4 chunks, last row/column 4 cells
  ASSERT_EQ(layout.chunks_x(), 4);
  ASSERT_EQ(layout.chunk_count(), 16u);
  const ChunkLayout::Rect interior = layout.rect_of(0);
  EXPECT_EQ(interior.w, kChunkSide);
  EXPECT_EQ(interior.h, kChunkSide);
  const ChunkLayout::Rect corner = layout.rect_of(15);
  EXPECT_EQ(corner.i0, 96);
  EXPECT_EQ(corner.j0, 96);
  EXPECT_EQ(corner.w, 4);
  EXPECT_EQ(corner.h, 4);
  EXPECT_EQ(layout.cells_in(15), 16u);
}

TEST(ChunkLayout, DegreeMatchesLattice) {
  const ChunkLayout layout(64);
  EXPECT_EQ(layout.degree_of(CellId{0, 0}), 2);
  EXPECT_EQ(layout.degree_of(CellId{63, 63}), 2);
  EXPECT_EQ(layout.degree_of(CellId{0, 10}), 3);
  EXPECT_EQ(layout.degree_of(CellId{10, 63}), 3);
  EXPECT_EQ(layout.degree_of(CellId{31, 32}), 4);
  EXPECT_EQ(ChunkLayout(1).degree_of(CellId{0, 0}), 0);
}

TEST(ChunkStore, StartsFullyVirgin) {
  const CellId target{50, 50};
  ChunkedCellStore store(100, target);
  EXPECT_EQ(store.live_count(), 0u);
  EXPECT_EQ(store.parked_count(), 0u);
  EXPECT_EQ(store.chunk_count(), 16u);
  for (std::size_t q = 0; q < store.chunk_count(); ++q) {
    EXPECT_EQ(store.state(q), ChunkedCellStore::State::kVirgin);
  }
  // Boundary reads and rest-state reconstruction need no materialization.
  EXPECT_TRUE(store.boundary_dist(CellId{0, 0}).is_infinite());
  EXPECT_EQ(store.boundary_dist(target), Dist::zero());
  const ChunkLayout& layout = store.layout();
  const CellState rest =
      store.rest_cell(layout.chunk_of(target), layout.slot_of(target));
  EXPECT_EQ(rest.dist, Dist::zero());
  EXPECT_FALSE(rest.failed);
  EXPECT_TRUE(rest.members.empty());
  EXPECT_EQ(store.live_count(), 0u) << "const reads must not materialize";
}

TEST(ChunkStore, EnsureLiveMaterializesInitialState) {
  const CellId target{50, 50};
  ChunkedCellStore store(100, target);
  const std::size_t q = store.layout().chunk_of(target);
  LiveChunk& lc = store.ensure_live(q);
  ASSERT_EQ(lc.cells.size(), store.layout().cells_in(q));
  EXPECT_EQ(store.live_count(), 1u);
  EXPECT_EQ(store.stats().materialized_total, 1u);
  for (std::size_t slot = 0; slot < lc.cells.size(); ++slot) {
    const CellState& c = lc.cells[slot];
    const bool is_target = store.layout().cell_at(q, slot) == target;
    EXPECT_EQ(c.dist, is_target ? Dist::zero() : Dist::infinity());
    EXPECT_FALSE(c.next.has_value());
    EXPECT_FALSE(c.failed);
    EXPECT_TRUE(c.members.empty());
  }
  // Idempotent.
  store.ensure_live(q);
  EXPECT_EQ(store.stats().materialized_total, 1u);
  EXPECT_EQ(store.live_count(), 1u);
}

TEST(ChunkStore, ParkUnparkRoundTripsState) {
  const CellId target{90, 90};
  ChunkedCellStore store(100, target);
  const std::size_t q = 0;  // far from the target chunk
  LiveChunk& lc = store.ensure_live(q);

  // A representative stabilized corner of the world: finite dists, next
  // pointers toward the target, a few failed cells.
  const ChunkLayout& layout = store.layout();
  for (std::size_t slot = 0; slot < lc.cells.size(); ++slot) {
    const CellId id = layout.cell_at(q, slot);
    CellState& c = lc.cells[slot];
    c.dist = Dist::finite(
        static_cast<std::uint64_t>(layout.side() * 2 - id.i - id.j));
    if (id.i + 1 < kChunkSide) c.next = CellId{id.i + 1, id.j};
    if ((id.i + id.j) % 7 == 0) {
      c.failed = true;
      c.dist = Dist::infinity();
      c.next.reset();
    }
  }
  const std::vector<CellState> before = lc.cells;

  ASSERT_TRUE(store.parkable(q));
  store.park(q);
  EXPECT_EQ(store.state(q), ChunkedCellStore::State::kParked);
  EXPECT_EQ(store.live_count(), 0u);
  EXPECT_EQ(store.parked_count(), 1u);
  EXPECT_EQ(store.stats().parked_total, 1u);

  // The summary answers boundary reads and rest-state queries exactly.
  for (std::size_t slot = 0; slot < before.size(); ++slot) {
    const CellId id = layout.cell_at(q, slot);
    EXPECT_EQ(store.boundary_dist(id), before[slot].dist) << to_string(id);
    const CellState rest = store.rest_cell(q, slot);
    EXPECT_EQ(rest.dist, before[slot].dist) << to_string(id);
    EXPECT_EQ(rest.next, before[slot].next) << to_string(id);
    EXPECT_EQ(rest.failed, before[slot].failed) << to_string(id);
    EXPECT_TRUE(rest.members.empty());
    EXPECT_FALSE(rest.token.has_value());
    EXPECT_FALSE(rest.signal.has_value());
    EXPECT_TRUE(rest.ne_prev.empty());
  }
  // The summary is an order of magnitude smaller than the live cells
  // alone (5 bytes/cell vs sizeof(CellState) plus aux arrays).
  EXPECT_LT(store.parked(q).resident_bytes() * 4,
            before.size() * sizeof(CellState));

  // Unpark: every protocol variable comes back bit-identically.
  LiveChunk& back = store.ensure_live(q);
  EXPECT_EQ(store.stats().unparked_total, 1u);
  ASSERT_EQ(back.cells.size(), before.size());
  for (std::size_t slot = 0; slot < before.size(); ++slot) {
    EXPECT_EQ(back.cells[slot].dist, before[slot].dist);
    EXPECT_EQ(back.cells[slot].next, before[slot].next);
    EXPECT_EQ(back.cells[slot].failed, before[slot].failed);
    EXPECT_EQ(back.dist_snapshot[slot], before[slot].dist)
        << "unpark must re-sync the route snapshot";
  }
}

TEST(ChunkStore, ParkableRefusesUnencodableState) {
  ChunkedCellStore store(100, CellId{90, 90});
  store.ensure_live(0);
  ASSERT_TRUE(store.parkable(0));

  // Adversarially corrupted finite dist beyond the u32 summary encoding.
  store.live(0).cells[5].dist = Dist::finite(0x1'0000'0000ULL);
  EXPECT_FALSE(store.parkable(0));
  store.live(0).cells[5].dist = Dist::finite(0xFFFFFFFEULL);
  EXPECT_TRUE(store.parkable(0));
  store.live(0).cells[5].dist = Dist::finite(3);

  // A next pointer that is not a lattice neighbor.
  store.live(0).cells[7].next = CellId{20, 20};
  EXPECT_FALSE(store.parkable(0));
  store.live(0).cells[7].next = CellId{8, 0};  // east neighbor of slot 7
  EXPECT_TRUE(store.parkable(0));
}

TEST(ChunkStore, ParkComputesCompensationTerms) {
  const CellId target{0, 0};  // inside chunk 0, which we park
  ChunkedCellStore store(64, target);
  store.ensure_live(0);
  const ChunkLayout& layout = store.layout();
  store.live(0).cells[layout.slot_of(CellId{3, 3})].failed = true;
  store.live(0).cells[layout.slot_of(CellId{0, 5})].failed = true;
  store.park(0);

  const ParkedChunk& p = store.parked(0);
  EXPECT_EQ(p.live_cells, 32u * 32u - 2);
  std::uint64_t expect_comp = 0;
  for (std::size_t slot = 0; slot < layout.cells_in(0); ++slot) {
    const CellId id = layout.cell_at(0, slot);
    if (id == target || id == CellId{3, 3} || id == CellId{0, 5}) continue;
    expect_comp += static_cast<std::uint64_t>(layout.degree_of(id));
  }
  EXPECT_EQ(p.route_comp, expect_comp);
}

TEST(ChunkStore, ResidentBytesShrinkPastTheFreelist) {
  // Parking more chunks than the freelist retains must actually release
  // memory — this is the mechanism behind bench/macro_huge_grid's
  // "memory ∝ active chunks" claim.
  ChunkedCellStore store(160, CellId{150, 150});  // 5×5 chunks
  for (std::size_t q = 0; q < 12; ++q) store.ensure_live(q);
  const std::uint64_t all_live = store.resident_bytes();
  for (std::size_t q = 0; q < 12; ++q) {
    ASSERT_TRUE(store.parkable(q));
    store.park(q);
  }
  EXPECT_EQ(store.live_count(), 0u);
  EXPECT_EQ(store.parked_count(), 12u);
  EXPECT_LT(store.resident_bytes(), all_live);
}

TEST(ChunkStore, StatsSampleMirrorsTheStore) {
  ChunkedCellStore store(160, CellId{150, 150});  // 5×5 chunks
  store.ensure_live(0);
  store.ensure_live(1);
  store.park(0);
  const obs::StoreStatsSample s = store.stats_sample();
  EXPECT_EQ(s.resident_bytes, store.resident_bytes());
  EXPECT_EQ(s.live_chunks, 1u);
  EXPECT_EQ(s.parked_chunks, 1u);
  EXPECT_EQ(s.virgin_chunks, 23u);
  EXPECT_EQ(s.materialized_total, 2u);
  EXPECT_EQ(s.parked_total, 1u);
  EXPECT_EQ(s.unparked_total, 0u);
}

TEST(ChunkStore, PublisherExportsGaugesAndDeltaCounters) {
  ChunkedCellStore store(160, CellId{150, 150});
  obs::MetricsRegistry reg;
  obs::StoreStatsPublisher pub(reg);

  store.ensure_live(0);
  store.ensure_live(1);
  pub.publish(store.stats_sample());
  store.park(0);
  store.ensure_live(0);  // unpark
  // Publishing again must feed the monotone totals as deltas, not
  // re-add the lifetime figures.
  pub.publish(store.stats_sample());

  const std::string text = obs::to_prometheus(reg);
  EXPECT_NE(text.find("cellflow_chunk_materialized_total 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cellflow_chunk_parked_total 1"), std::string::npos);
  EXPECT_NE(text.find("cellflow_chunk_unparked_total 1"), std::string::npos);
  EXPECT_NE(text.find("cellflow_store_chunks{state=\"live\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cellflow_store_chunks{state=\"parked\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("cellflow_store_chunks{state=\"virgin\"} 23"),
            std::string::npos);
  EXPECT_NE(text.find("cellflow_store_resident_bytes"), std::string::npos);
  EXPECT_NE(text.find("cellflow_resident_bytes_peak"), std::string::npos);
}

TEST(ChunkStore, ProcessMemoryReadsProcfsOrReportsZero) {
  const obs::ProcessMemory mem = obs::process_memory();
  // On Linux both figures are real and the high-water mark dominates the
  // current RSS; elsewhere the reader degrades to zeros, never garbage.
  if (mem.vm_hwm_bytes != 0) {
    EXPECT_GE(mem.vm_hwm_bytes, mem.vm_rss_bytes);
    EXPECT_GT(mem.vm_rss_bytes, 0u);
  } else {
    EXPECT_EQ(mem.vm_rss_bytes + mem.vm_hwm_bytes, 0u);
  }
}

TEST(ChunkStore, LiveOrderIsAscending) {
  ChunkedCellStore store(160, CellId{0, 0});
  for (const std::size_t q : {7u, 2u, 11u, 0u, 5u}) store.ensure_live(q);
  const std::vector<std::uint32_t>& order = store.live_order();
  const std::vector<std::uint32_t> expect{0, 2, 5, 7, 11};
  EXPECT_EQ(order, expect);
  store.park(7);
  const std::vector<std::uint32_t> after{0, 2, 5, 11};
  EXPECT_EQ(store.live_order(), after);
}

}  // namespace
}  // namespace cellflow::chunk
