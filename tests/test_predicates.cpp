// Tests for the §III-A safety oracles: they must accept good states and,
// crucially, *detect* bad ones (via seed_entity_unchecked, which bypasses
// the protocol's own validation).
#include "core/predicates.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace cellflow {
namespace {

const Params kP(0.2, 0.1, 0.1);  // d = 0.3

TEST(SafeOracle, EmptySystemIsSafe) {
  const System sys = testing::make_column_system(4, kP);
  EXPECT_FALSE(check_safe(sys).has_value());
  EXPECT_TRUE(safe_cell(sys, CellId{0, 0}));
}

TEST(SafeOracle, AxisSeparationSuffices) {
  System sys = testing::make_closed_system(4, kP, CellId{3, 3});
  sys.seed_entity(CellId{0, 0}, Vec2{0.15, 0.5});
  sys.seed_entity(CellId{0, 0}, Vec2{0.5, 0.5});   // x-separated by 0.35 > d
  sys.seed_entity(CellId{0, 0}, Vec2{0.15, 0.85});  // y-separated by 0.35 > d
  EXPECT_FALSE(check_safe(sys).has_value());
}

TEST(SafeOracle, DetectsTooClosePair) {
  System sys = testing::make_closed_system(4, kP, CellId{3, 3});
  sys.seed_entity_unchecked(CellId{1, 1}, Vec2{1.5, 1.5});
  sys.seed_entity_unchecked(CellId{1, 1}, Vec2{1.7, 1.6});  // < d both axes
  const auto v = check_safe(sys);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->predicate, "Safe");
  EXPECT_EQ(v->cell, (CellId{1, 1}));
  EXPECT_FALSE(safe_cell(sys, CellId{1, 1}));
}

TEST(SafeOracle, CrossCellProximityIsAllowed) {
  // Entities in adjacent cells may be closer than d (the paper notes
  // adjacent-cell edges can be spaced < rs); Safe is per-cell.
  System sys = testing::make_closed_system(4, kP, CellId{3, 3});
  sys.seed_entity(CellId{0, 0}, Vec2{0.9, 0.5});
  sys.seed_entity(CellId{1, 0}, Vec2{1.1, 0.5});
  EXPECT_FALSE(check_safe(sys).has_value());
}

TEST(BoundsOracle, DetectsEntityOutsideCell) {
  System sys = testing::make_closed_system(4, kP, CellId{3, 3});
  sys.seed_entity_unchecked(CellId{1, 1}, Vec2{1.05, 1.5});  // sticks west
  const auto v = check_members_in_bounds(sys);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->predicate, "Invariant1");
}

TEST(BoundsOracle, FlushPlacementIsInBounds) {
  System sys = testing::make_closed_system(4, kP, CellId{3, 3});
  sys.seed_entity(CellId{1, 1}, Vec2{1.1, 1.5});  // exactly flush
  EXPECT_FALSE(check_members_in_bounds(sys).has_value());
}

TEST(DisjointOracle, CleanOnDistinctEntities) {
  System sys = testing::make_closed_system(4, kP, CellId{3, 3});
  sys.seed_entity(CellId{0, 0}, Vec2{0.5, 0.5});
  sys.seed_entity(CellId{1, 1}, Vec2{1.5, 1.5});
  EXPECT_FALSE(check_members_disjoint(sys).has_value());
}

TEST(HOracle, CleanWhenNoSignals) {
  const System sys = testing::make_column_system(4, kP);
  EXPECT_FALSE(check_h_predicate(sys).has_value());
}

TEST(HOracle, DetectsGrantWithOccupiedStrip) {
  System sys = testing::make_closed_system(4, kP, CellId{3, 3});
  // Entity in the west strip of ⟨1,1⟩ (px − l/2 < 1 + d ⇔ px < 1.4)...
  sys.seed_entity_unchecked(CellId{1, 1}, Vec2{1.2, 1.5});
  // ...while signal points west.
  sys.corrupt_control_state(CellId{1, 1}, Dist::finite(4), CellId{1, 2},
                            std::nullopt, CellId{0, 1});
  const auto v = check_h_predicate(sys);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->predicate, "H");
}

TEST(HOracle, AcceptsGrantWithClearStrip) {
  System sys = testing::make_closed_system(4, kP, CellId{3, 3});
  sys.seed_entity_unchecked(CellId{1, 1}, Vec2{1.5, 1.5});  // px ≥ 1.4 ok
  sys.corrupt_control_state(CellId{1, 1}, Dist::finite(4), CellId{1, 2},
                            std::nullopt, CellId{0, 1});
  EXPECT_FALSE(check_h_predicate(sys).has_value());
}

TEST(HOracle, DetectsSignalAtNonNeighbor) {
  System sys = testing::make_closed_system(4, kP, CellId{3, 3});
  sys.corrupt_control_state(CellId{1, 1}, Dist::finite(4), std::nullopt,
                            std::nullopt, CellId{3, 3});
  const auto v = check_h_predicate(sys);
  ASSERT_TRUE(v.has_value());
}

TEST(FootprintOracle, DetectsPhysicalOverlap) {
  System sys = testing::make_closed_system(4, kP, CellId{3, 3});
  sys.seed_entity_unchecked(CellId{2, 2}, Vec2{2.5, 2.5});
  sys.seed_entity_unchecked(CellId{2, 2}, Vec2{2.6, 2.5});  // overlap (l=0.2)
  const auto v = check_footprints_separated(sys);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->predicate, "FootprintOverlap");
}

TEST(FootprintOracle, DetectsSubRsGap) {
  System sys = testing::make_closed_system(4, kP, CellId{3, 3});
  sys.seed_entity_unchecked(CellId{2, 2}, Vec2{2.3, 2.5});
  // Edge gap 0.05 < rs = 0.1 (no overlap though).
  sys.seed_entity_unchecked(CellId{2, 2}, Vec2{2.55, 2.5});
  const auto v = check_footprints_separated(sys);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->predicate, "FootprintGap");
}

TEST(CheckAll, AggregatesAcrossOracles) {
  System sys = testing::make_closed_system(4, kP, CellId{3, 3});
  EXPECT_TRUE(check_all(sys).empty());
  sys.seed_entity_unchecked(CellId{1, 1}, Vec2{1.5, 1.5});
  sys.seed_entity_unchecked(CellId{1, 1}, Vec2{1.55, 1.55});
  const auto vs = check_all(sys);
  // Safe and FootprintOverlap both fire.
  EXPECT_GE(vs.size(), 2u);
}

TEST(ViolationToString, MentionsPredicateAndCell) {
  const Violation v{"Safe", CellId{1, 2}, "p0 vs p1"};
  const std::string s = to_string(v);
  EXPECT_NE(s.find("Safe"), std::string::npos);
  EXPECT_NE(s.find("<1,2>"), std::string::npos);
  EXPECT_NE(s.find("p0 vs p1"), std::string::npos);
}

// Consistency property: Safe (center spacing ≥ d along an axis) implies
// footprint separation ≥ rs — sampled over many random safe placements.
TEST(OracleConsistency, SafeImpliesFootprintsSeparated) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    System sys = testing::make_closed_system(2, kP, CellId{1, 1});
    // Place up to 6 random entities, keeping only protocol-safe ones.
    for (int k = 0; k < 6; ++k) {
      const Vec2 pos{rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)};
      try {
        (void)sys.seed_entity(CellId{0, 0}, pos);
      } catch (const ContractViolation&) {
        // rejected placement — fine
      }
    }
    EXPECT_FALSE(check_safe(sys).has_value());
    EXPECT_FALSE(check_footprints_separated(sys).has_value());
  }
}

}  // namespace
}  // namespace cellflow
