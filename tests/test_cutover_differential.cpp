// Differential pinning of the serial-cutover engine selector: because
// every engine (serial loop, sharded pool, fused pool, kAuto cutover) is
// bit-identical, the policy may be flipped BETWEEN ROUNDS at will — even
// across a snapshot/restore — without the execution noticing. 48 seeds
// cycle serial -> parallel -> parallel_auto per round against a pinned
// serial reference; a fourth engine is snapshot/restored mid-run and must
// re-converge digest-for-digest. Prometheus histogram `_count` lines are
// compared too (timing *values* are wall-clock and excluded; the sample
// COUNTS are part of the determinism contract — a cutover round must
// still record exactly one breakdown).
//
// (Suite name deliberately contains "Differential" so the TSan ctest
// lane picks it up.)
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/choose.hpp"
#include "core/system.hpp"
#include "obs/engine_telemetry.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "snapshot/snapshot.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

// The per-round policy cycle. Mixes thread counts, both cutover modes,
// and the plain serial loop; seeded so different scenarios hit different
// flip sequences. `phase` offsets the cycle so two engines in the same
// scenario disagree on which engine runs any given round.
ParallelPolicy policy_for(std::uint64_t seed, int round, int phase) {
  switch ((seed + static_cast<std::uint64_t>(round + phase)) % 6) {
    case 0: return ParallelPolicy::serial();
    case 1: return ParallelPolicy::parallel(2);
    case 2: return ParallelPolicy::parallel_auto(4);
    case 3: return ParallelPolicy::parallel(8);
    case 4: return ParallelPolicy::parallel_auto(2);
    default: return ParallelPolicy::parallel_auto(8);
  }
}

// Histogram `_count` sample lines of the exposition, in exposition
// order. Timing values (sums, buckets) and the wake/dispatch counters
// are engine-dependent by design; the sample counts are not.
std::string count_lines(const obs::MetricsRegistry& reg) {
  std::istringstream in(obs::to_prometheus(reg));
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.find("_count") != std::string::npos) out += line + '\n';
  }
  return out;
}

struct Scenario {
  std::uint64_t seed;
};

void PrintTo(const Scenario& s, std::ostream* os) { *os << "seed=" << s.seed; }

class CutoverDifferential : public ::testing::TestWithParam<Scenario> {};

TEST_P(CutoverDifferential, BitIdenticalAcrossPolicyFlipsAndRestore) {
  const std::uint64_t seed = GetParam().seed;
  Xoshiro256 rng(seed * 9421 + 7);

  const auto u = [&rng](int n) {
    return static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n)));
  };

  // Same random envelope as tests/test_parallel_system.cpp.
  const int side = 4 + static_cast<int>(rng.below(5));  // 4..8
  const double l = rng.uniform(0.1, 0.35);
  const double rs = rng.uniform(0.05, std::min(0.4, 0.95 - l));
  const double v = rng.uniform(0.05, l);
  const CellId target{u(side), u(side)};
  std::vector<CellId> sources;
  const std::size_t n_sources = 1 + rng.below(2);
  while (sources.size() < n_sources) {
    const CellId c{u(side), u(side)};
    if (c == target) continue;
    if (std::find(sources.begin(), sources.end(), c) != sources.end())
      continue;
    sources.push_back(c);
  }

  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(l, rs, v);
  cfg.target = target;
  cfg.sources = sources;
  cfg.movement_rule =
      (seed % 2 == 0) ? MovementRule::kCoupled : MovementRule::kCompacting;
  cfg.signal_rule =
      (seed % 5 == 0) ? SignalRule::kAlwaysGrant : SignalRule::kBlocking;

  // ref: pinned serial, instrumented. flip: policy flipped every round,
  // instrumented (telemetry keeps it on the legacy barriered path).
  // bare: policy flipped on a different cycle phase, UNinstrumented — the
  // engine that actually exercises the fused run_plan path when pooled.
  System ref{cfg};
  ref.set_parallel_policy(ParallelPolicy::serial());
  obs::MetricsRegistry reg_ref;
  obs::EngineTelemetry tel_ref(reg_ref);
  ref.set_metrics(&reg_ref);
  ref.set_telemetry(&tel_ref);

  System flip{cfg};
  obs::MetricsRegistry reg_flip;
  obs::EngineTelemetry tel_flip(reg_flip);
  flip.set_metrics(&reg_flip);
  flip.set_telemetry(&tel_flip);

  System bare{cfg};

  // restored: forked from `bare` via snapshot at kForkRound, rebuilt with
  // a policy the donor never ran that round, then flipped per round on
  // its own cycle phase. Must shadow the reference exactly from the fork.
  constexpr int kForkRound = 24;
  std::unique_ptr<System> restored;

  for (int round = 0; round < 60; ++round) {
    flip.set_parallel_policy(policy_for(seed, round, 0));
    bare.set_parallel_policy(policy_for(seed, round, 1));
    if (restored) restored->set_parallel_policy(policy_for(seed, round, 2));

    // Identical scripted fail/recover schedule for every engine.
    for (const CellId id : ref.grid().all_cells()) {
      if (ref.cell(id).failed) {
        if (rng.bernoulli(0.05)) {
          ref.recover(id);
          flip.recover(id);
          bare.recover(id);
          if (restored) restored->recover(id);
        }
      } else if (rng.bernoulli(0.012)) {
        ref.fail(id);
        flip.fail(id);
        bare.fail(id);
        if (restored) restored->fail(id);
      }
    }

    ref.update();
    flip.update();
    bare.update();
    if (restored) restored->update();

    const std::uint64_t want = snapshot::state_digest(ref);
    ASSERT_EQ(want, snapshot::state_digest(flip))
        << "flip engine diverged, round " << round;
    ASSERT_EQ(want, snapshot::state_digest(bare))
        << "bare engine diverged, round " << round;
    if (restored) {
      ASSERT_EQ(want, snapshot::state_digest(*restored))
          << "restored engine diverged, round " << round;
    }

    if (round == kForkRound) {
      const std::vector<std::uint8_t> bytes = snapshot::save(bare);
      restored = std::make_unique<System>(cfg);
      restored->set_parallel_policy(ParallelPolicy::parallel_auto(4));
      snapshot::restore(*restored, bytes);
      ASSERT_EQ(want, snapshot::state_digest(*restored)) << "restore";
    }
  }

  // Every histogram must have sampled the same number of rounds on both
  // instrumented engines, cutover rounds included.
  EXPECT_EQ(count_lines(reg_ref), count_lines(reg_flip));
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  for (std::uint64_t s = 1; s <= 48; ++s) out.push_back({s});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutoverDifferential,
                         ::testing::ValuesIn(scenarios()));

}  // namespace
}  // namespace cellflow
