// Tests for Path and the path builders behind the Figure-8 experiments.
#include "grid/path.hpp"

#include <gtest/gtest.h>

#include "grid/mask.hpp"
#include "util/check.hpp"

namespace cellflow {
namespace {

TEST(Path, ValidStraightLine) {
  const Grid g(8);
  const Path p(g, {{1, 0}, {1, 1}, {1, 2}, {1, 3}});
  EXPECT_EQ(p.length(), 4u);
  EXPECT_EQ(p.turns(), 0u);
  EXPECT_EQ(p.source(), (CellId{1, 0}));
  EXPECT_EQ(p.target(), (CellId{1, 3}));
}

TEST(Path, RejectsNonAdjacentCells) {
  const Grid g(8);
  EXPECT_THROW(Path(g, {{0, 0}, {0, 2}}), ContractViolation);
  EXPECT_THROW(Path(g, {{0, 0}, {1, 1}}), ContractViolation);  // diagonal
}

TEST(Path, RejectsRevisits) {
  const Grid g(8);
  EXPECT_THROW(Path(g, {{0, 0}, {0, 1}, {0, 0}}), ContractViolation);
}

TEST(Path, RejectsOutOfGridCells) {
  const Grid g(2);
  EXPECT_THROW(Path(g, {{1, 1}, {1, 2}}), ContractViolation);
}

TEST(Path, RejectsEmpty) {
  const Grid g(2);
  EXPECT_THROW(Path(g, {}), ContractViolation);
}

TEST(Path, SingleCellPathIsLegal) {
  const Grid g(2);
  const Path p(g, {CellId{0, 0}});
  EXPECT_EQ(p.length(), 1u);
  EXPECT_EQ(p.turns(), 0u);
}

TEST(Path, TurnCounting) {
  const Grid g(8);
  // N, N, E, E, N: turns at index 2 and 4.
  const Path p(g, {{0, 0}, {0, 1}, {0, 2}, {1, 2}, {2, 2}, {2, 3}});
  EXPECT_EQ(p.turns(), 2u);
}

TEST(Path, ContainsAndSuccessor) {
  const Grid g(8);
  const Path p(g, {{1, 0}, {1, 1}, {2, 1}});
  EXPECT_TRUE(p.contains(CellId{1, 1}));
  EXPECT_FALSE(p.contains(CellId{0, 0}));
  EXPECT_EQ(p.successor(CellId{1, 0}), OptCellId(CellId{1, 1}));
  EXPECT_EQ(p.successor(CellId{1, 1}), OptCellId(CellId{2, 1}));
  EXPECT_EQ(p.successor(CellId{2, 1}), OptCellId{});  // target
  EXPECT_EQ(p.successor(CellId{5, 5}), OptCellId{});  // non-member
}

TEST(Path, ToStringShowsArrowChain) {
  const Grid g(4);
  const Path p(g, {{0, 0}, {0, 1}});
  EXPECT_EQ(p.to_string(), "<0,0> -> <0,1>");
}

TEST(MakeStraightPath, BuildsRequestedLine) {
  const Grid g(8);
  const Path p = make_straight_path(g, CellId{1, 0}, Direction::kNorth, 8);
  EXPECT_EQ(p.length(), 8u);
  EXPECT_EQ(p.turns(), 0u);
  EXPECT_EQ(p.source(), (CellId{1, 0}));
  EXPECT_EQ(p.target(), (CellId{1, 7}));
}

TEST(MakeStraightPath, OutOfGridThrows) {
  const Grid g(4);
  EXPECT_THROW((void)make_straight_path(g, CellId{0, 0}, Direction::kNorth, 5),
               ContractViolation);
}

TEST(MakeTurningPath, ZeroTurnsIsStraight) {
  const Grid g(8);
  const Path p = make_turning_path(g, CellId{0, 0}, Direction::kNorth,
                                   Direction::kEast, 8, 0);
  EXPECT_EQ(p.length(), 8u);
  EXPECT_EQ(p.turns(), 0u);
  EXPECT_EQ(p.target(), (CellId{0, 7}));
}

TEST(MakeTurningPath, MaxTurnsIsStaircase) {
  const Grid g(8);
  const Path p = make_turning_path(g, CellId{0, 0}, Direction::kNorth,
                                   Direction::kEast, 8, 6);
  EXPECT_EQ(p.length(), 8u);
  EXPECT_EQ(p.turns(), 6u);
}

TEST(MakeTurningPath, TooManyTurnsRejected) {
  const Grid g(8);
  EXPECT_THROW((void)make_turning_path(g, CellId{0, 0}, Direction::kNorth,
                                       Direction::kEast, 8, 7),
               ContractViolation);
}

TEST(MakeTurningPath, ParallelDirectionsRejected) {
  const Grid g(8);
  EXPECT_THROW((void)make_turning_path(g, CellId{0, 0}, Direction::kNorth,
                                       Direction::kSouth, 8, 2),
               ContractViolation);
}

// The Figure-8 sweep: every turn count 0…6 must be constructible at
// length 8 inside an 8×8 grid from the corner.
class TurningPathSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TurningPathSweep, ExactTurnsAndLength) {
  const Grid g(8);
  const std::size_t turns = GetParam();
  const Path p = make_turning_path(g, CellId{0, 0}, Direction::kNorth,
                                   Direction::kEast, 8, turns);
  EXPECT_EQ(p.length(), 8u);
  EXPECT_EQ(p.turns(), turns);
  EXPECT_EQ(p.source(), (CellId{0, 0}));
}

INSTANTIATE_TEST_SUITE_P(Fig8Turns, TurningPathSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u));

// Longer lengths used by the path-length-independence ablation.
class TurningPathLengths
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(TurningPathLengths, BuildsOn16Grid) {
  const Grid g(16);
  const auto [cells, turns] = GetParam();
  const Path p = make_turning_path(g, CellId{0, 0}, Direction::kNorth,
                                   Direction::kEast, cells, turns);
  EXPECT_EQ(p.length(), cells);
  EXPECT_EQ(p.turns(), turns);
}

INSTANTIATE_TEST_SUITE_P(
    LengthTurnGrid, TurningPathLengths,
    ::testing::Values(std::pair{3u, 1u}, std::pair{6u, 4u}, std::pair{10u, 0u},
                      std::pair{12u, 5u}, std::pair{14u, 9u},
                      std::pair{16u, 14u}));

TEST(MakeSnakePath, CoversRowsBoustrophedon) {
  const Grid g(4);
  const Path p = make_snake_path(g, CellId{0, 0}, 4, 3);
  EXPECT_EQ(p.length(), 12u);
  // Row 0 eastward, row 1 westward, row 2 eastward.
  EXPECT_EQ(p.cells()[0], (CellId{0, 0}));
  EXPECT_EQ(p.cells()[3], (CellId{3, 0}));
  EXPECT_EQ(p.cells()[4], (CellId{3, 1}));
  EXPECT_EQ(p.cells()[7], (CellId{0, 1}));
  EXPECT_EQ(p.cells()[8], (CellId{0, 2}));
  EXPECT_EQ(p.turns(), 4u);  // two turns at each row change
}

TEST(MakeSerpentinePath, LanesSpacedTwoApartWithConnectors) {
  const Grid g(8);
  const Path p = make_serpentine_path(g, CellId{0, 0}, 4, 3);
  // 3 lanes of 4 + 2 connectors = 14 cells.
  EXPECT_EQ(p.length(), 14u);
  EXPECT_EQ(p.source(), (CellId{0, 0}));
  EXPECT_EQ(p.cells()[3], (CellId{3, 0}));  // lane 0 exit
  EXPECT_EQ(p.cells()[4], (CellId{3, 1}));  // connector
  EXPECT_EQ(p.cells()[5], (CellId{3, 2}));  // lane 1 entry (westbound)
  EXPECT_EQ(p.cells()[8], (CellId{0, 2}));  // lane 1 exit
  EXPECT_EQ(p.cells()[9], (CellId{0, 3}));  // connector
  EXPECT_EQ(p.target(), (CellId{3, 4}));
}

TEST(MakeSerpentinePath, CarvedShapeHasNoShortcuts) {
  // The defining property vs make_snake_path: along the carved serpentine
  // the BFS distance from source to target equals the path length − 1
  // (no lateral shortcuts between lanes).
  const Grid g(8);
  const Path p = make_serpentine_path(g, CellId{0, 0}, 5, 3);
  const CellMask alive = CellMask::of(g, p.cells());
  const auto rho = path_distances(g, alive, p.target());
  EXPECT_EQ(rho[g.index_of(p.source())],
            Dist::finite(p.length() - 1));
}

TEST(MakeSerpentinePath, PreconditionsEnforced) {
  const Grid g(8);
  EXPECT_THROW((void)make_serpentine_path(g, CellId{0, 0}, 1, 2),
               ContractViolation);
  EXPECT_THROW((void)make_serpentine_path(g, CellId{0, 0}, 4, 0),
               ContractViolation);
  EXPECT_THROW((void)make_serpentine_path(g, CellId{0, 0}, 9, 2),
               ContractViolation);  // too wide for the grid
}

TEST(MakeSnakePath, DegenerateSingleColumn) {
  const Grid g(4);
  const Path p = make_snake_path(g, CellId{2, 0}, 1, 4);
  EXPECT_EQ(p.length(), 4u);
  EXPECT_EQ(p.turns(), 0u);
}

}  // namespace
}  // namespace cellflow
