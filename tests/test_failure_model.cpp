// Tests for the failure environments (scripted, stochastic, carving).
#include "failure/failure_model.hpp"

#include <gtest/gtest.h>

#include "grid/path.hpp"
#include "helpers.hpp"

namespace cellflow {
namespace {

const Params kP(0.2, 0.1, 0.1);

TEST(NoFailuresModel, IsQuiescentAndInert) {
  System sys = testing::make_column_system(4, kP);
  NoFailures none;
  EXPECT_TRUE(none.quiescent());
  none.apply(sys);
  EXPECT_EQ(sys.alive_mask().count(), 16u);
}

TEST(ScriptedFailures, AppliesAtExactRounds) {
  System sys = testing::make_column_system(4, kP);
  ScriptedFailures script({{3, CellId{2, 2}, false},
                           {7, CellId{0, 0}, false},
                           {10, CellId{2, 2}, true}});
  for (int round = 0; round < 12; ++round) {
    script.apply(sys);
    sys.update();
    if (round == 3) {
      EXPECT_TRUE(sys.cell(CellId{2, 2}).failed);
    }
    if (round == 6) {
      EXPECT_FALSE(sys.cell(CellId{0, 0}).failed);
    }
    if (round == 7) {
      EXPECT_TRUE(sys.cell(CellId{0, 0}).failed);
    }
    if (round == 10) {
      EXPECT_FALSE(sys.cell(CellId{2, 2}).failed);
    }
  }
  EXPECT_TRUE(sys.cell(CellId{0, 0}).failed);  // never recovered
}

TEST(ScriptedFailures, OutOfOrderInputIsSorted) {
  System sys = testing::make_column_system(4, kP);
  ScriptedFailures script({{9, CellId{0, 0}, false}, {2, CellId{3, 3}, false}});
  EXPECT_EQ(script.last_fail_round(), 9u);
  for (int round = 0; round < 3; ++round) {
    script.apply(sys);
    sys.update();
  }
  EXPECT_TRUE(sys.cell(CellId{3, 3}).failed);
  EXPECT_FALSE(sys.cell(CellId{0, 0}).failed);
}

TEST(ScriptedFailures, QuiescenceAfterLastFail) {
  System sys = testing::make_column_system(4, kP);
  ScriptedFailures script({{1, CellId{0, 0}, false}, {5, CellId{0, 0}, true}});
  EXPECT_FALSE(script.quiescent());
  for (int round = 0; round < 3; ++round) {
    script.apply(sys);
    sys.update();
  }
  EXPECT_TRUE(script.quiescent());  // only a recover remains
}

TEST(RandomFailRecover, RatesMatchStatistically) {
  System sys = testing::make_column_system(8, kP);
  RandomFailRecover model(0.05, 0.25, 99);
  std::uint64_t failed_rounds = 0;
  std::uint64_t cell_rounds = 0;
  for (int round = 0; round < 2000; ++round) {
    model.apply(sys);
    sys.update();
    for (const CellState& c : sys.cells()) {
      ++cell_rounds;
      if (c.failed) ++failed_rounds;
    }
  }
  // Stationary failed fraction = pf / (pf + pr) = 0.05 / 0.3 ≈ 0.167.
  const double frac =
      static_cast<double>(failed_rounds) / static_cast<double>(cell_rounds);
  EXPECT_NEAR(frac, 0.167, 0.04);
  EXPECT_GT(model.total_failures(), 0u);
  EXPECT_GT(model.total_recoveries(), 0u);
  EXPECT_FALSE(model.quiescent());
}

TEST(RandomFailRecover, ProtectTargetExemptsTarget) {
  System sys = testing::make_column_system(6, kP);
  RandomFailRecover model(0.5, 0.1, 7, /*protect_target=*/true);
  for (int round = 0; round < 200; ++round) {
    model.apply(sys);
    EXPECT_FALSE(sys.cell(sys.target()).failed);
    sys.update();
  }
}

TEST(RandomFailRecover, UnprotectedTargetCanFailAndRecover) {
  System sys = testing::make_column_system(6, kP);
  RandomFailRecover model(0.5, 0.5, 7, /*protect_target=*/false);
  bool target_failed_once = false;
  for (int round = 0; round < 200; ++round) {
    model.apply(sys);
    if (sys.cell(sys.target()).failed) target_failed_once = true;
    sys.update();
  }
  EXPECT_TRUE(target_failed_once);
  // §IV: recovery of tid resets dist_tid = 0 so routing can re-anchor.
  if (!sys.cell(sys.target()).failed) {
    EXPECT_EQ(sys.cell(sys.target()).dist, Dist::zero());
  }
}

TEST(RandomFailRecover, InvalidProbabilitiesRejected) {
  EXPECT_THROW(RandomFailRecover(-0.1, 0.5, 1), ContractViolation);
  EXPECT_THROW(RandomFailRecover(0.5, 1.5, 1), ContractViolation);
}

TEST(RandomFailRecover, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    System sys = testing::make_column_system(6, kP);
    RandomFailRecover model(0.1, 0.2, seed);
    for (int round = 0; round < 100; ++round) {
      model.apply(sys);
      sys.update();
    }
    std::string fingerprint;
    for (const CellState& c : sys.cells())
      fingerprint += c.failed ? 'X' : '.';
    return fingerprint;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(CarvePath, FailsExactlyOffPathCells) {
  System sys = testing::make_column_system(8, kP);
  const Path path = make_turning_path(sys.grid(), CellId{1, 0},
                                      Direction::kNorth, Direction::kEast, 8, 2);
  carve_path(sys, path);
  for (const CellId id : sys.grid().all_cells())
    EXPECT_EQ(sys.cell(id).failed, !path.contains(id)) << to_string(id);
  EXPECT_EQ(sys.alive_mask().count(), 8u);
}

TEST(CarveMask, KeepsExactlyMaskedCells) {
  System sys = testing::make_column_system(4, kP);
  const CellMask keep = CellMask::of(sys.grid(), {{1, 0}, {1, 1}, {1, 2}, {1, 3}});
  carve_mask(sys, keep);
  EXPECT_EQ(sys.alive_mask().count(), 4u);
  EXPECT_FALSE(sys.cell(CellId{0, 0}).failed == false);
  EXPECT_FALSE(sys.cell(CellId{1, 2}).failed);
}

}  // namespace
}  // namespace cellflow
