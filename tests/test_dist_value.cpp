// Unit tests for Dist (N∞ with saturating successor) — the value type
// behind the paper's dist variable.
#include "util/dist_value.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"

namespace cellflow {
namespace {

TEST(DistValue, DefaultIsInfinity) {
  const Dist d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.is_finite());
  EXPECT_EQ(d, Dist::infinity());
}

TEST(DistValue, ZeroIsFinite) {
  const Dist d = Dist::zero();
  EXPECT_TRUE(d.is_finite());
  EXPECT_EQ(d.hops(), 0u);
}

TEST(DistValue, FiniteRoundTripsHops) {
  for (const std::uint64_t h : {0ull, 1ull, 7ull, 1000000ull}) {
    EXPECT_EQ(Dist::finite(h).hops(), h);
    EXPECT_TRUE(Dist::finite(h).is_finite());
  }
}

TEST(DistValue, PlusOneIncrementsFinite) {
  EXPECT_EQ(Dist::zero().plus_one(), Dist::finite(1));
  EXPECT_EQ(Dist::finite(41).plus_one(), Dist::finite(42));
}

TEST(DistValue, PlusOneSaturatesAtInfinity) {
  EXPECT_TRUE(Dist::infinity().plus_one().is_infinite());
  // Repeated saturation stays put.
  Dist d = Dist::infinity();
  for (int k = 0; k < 10; ++k) d = d.plus_one();
  EXPECT_TRUE(d.is_infinite());
}

TEST(DistValue, OrderingPutsInfinityLast) {
  EXPECT_LT(Dist::zero(), Dist::finite(1));
  EXPECT_LT(Dist::finite(1), Dist::finite(2));
  EXPECT_LT(Dist::finite(1000000), Dist::infinity());
  EXPECT_LE(Dist::infinity(), Dist::infinity());
  EXPECT_GT(Dist::infinity(), Dist::zero());
}

TEST(DistValue, EqualityIsByValue) {
  EXPECT_EQ(Dist::finite(3), Dist::finite(3));
  EXPECT_NE(Dist::finite(3), Dist::finite(4));
  EXPECT_NE(Dist::finite(3), Dist::infinity());
}

TEST(DistValue, HopsOnInfinityViolatesContract) {
  EXPECT_THROW((void)Dist::infinity().hops(), ContractViolation);
}

TEST(DistValue, ToStringFormats) {
  EXPECT_EQ(to_string(Dist::finite(12)), "12");
  EXPECT_EQ(to_string(Dist::infinity()), "inf");
}

TEST(DistValue, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Dist::finite(5) << ' ' << Dist::infinity();
  EXPECT_EQ(os.str(), "5 inf");
}

// Property: plus_one is monotone — a < b implies a+1 <= b+1.
TEST(DistValue, PlusOneIsMonotone) {
  const Dist values[] = {Dist::zero(), Dist::finite(1), Dist::finite(100),
                         Dist::infinity()};
  for (const Dist a : values) {
    for (const Dist b : values) {
      if (a < b) {
        EXPECT_LE(a.plus_one(), b.plus_one());
      }
    }
  }
}

}  // namespace
}  // namespace cellflow
