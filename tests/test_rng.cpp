// Tests for the deterministic RNG substrate. Statistical checks use wide
// tolerances — they guard against implementation blunders (bad seeding,
// truncation), not against subtle distributional flaws.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace cellflow {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(12345);
  SplitMix64 b(12345);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int k = 0; k < 100; ++k)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownVector) {
  // Reference value for seed 0 from the canonical SplitMix64.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(999);
  Xoshiro256 b(999);
  for (int k = 0; k < 1000; ++k) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, NearbySeedsDecorrelated) {
  Xoshiro256 a(7);
  Xoshiro256 b(8);
  int equal = 0;
  for (int k = 0; k < 1000; ++k)
    if (a() == b()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, Uniform01InRange) {
  Xoshiro256 rng(42);
  for (int k = 0; k < 10000; ++k) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanNearHalf) {
  Xoshiro256 rng(42);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int k = 0; k < n; ++k) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(3);
  for (int k = 0; k < 1000; ++k) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Xoshiro256, UniformRejectsInvertedBounds) {
  Xoshiro256 rng(3);
  EXPECT_THROW((void)rng.uniform(1.0, 0.0), ContractViolation);
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(17);
  for (int k = 0; k < 10000; ++k) EXPECT_LT(rng.below(13), 13u);
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(17);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, BelowZeroViolatesContract) {
  Xoshiro256 rng(17);
  EXPECT_THROW((void)rng.below(0), ContractViolation);
}

TEST(Xoshiro256, BelowCoversAllResidues) {
  Xoshiro256 rng(5);
  std::array<int, 7> counts{};
  constexpr int n = 70000;
  for (int k = 0; k < n; ++k) ++counts[rng.below(7)];
  for (const int c : counts) {
    // Expected 10000 each; allow ±6%.
    EXPECT_GT(c, 9400);
    EXPECT_LT(c, 10600);
  }
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(11);
  int hits = 0;
  constexpr int n = 100000;
  for (int k = 0; k < n; ++k)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256, BernoulliDegenerateCases) {
  Xoshiro256 rng(11);
  for (int k = 0; k < 100; ++k) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro256, BernoulliRejectsOutOfRange) {
  Xoshiro256 rng(11);
  EXPECT_THROW((void)rng.bernoulli(-0.1), ContractViolation);
  EXPECT_THROW((void)rng.bernoulli(1.1), ContractViolation);
}

TEST(Xoshiro256, SplitGivesIndependentStream) {
  Xoshiro256 parent(100);
  Xoshiro256 child = parent.split();
  int equal = 0;
  for (int k = 0; k < 1000; ++k)
    if (parent() == child()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ULL);
  Xoshiro256 rng(1);
  const std::uint64_t v = rng();
  EXPECT_GE(v, Xoshiro256::min());
}

// state() IS the serialized stream format (src/snapshot writes these four
// words verbatim): the word order and the SplitMix64 seed expansion are
// pinned here with literal golden values. If this test breaks, every
// previously written snapshot decodes into a different stream — bump the
// snapshot format version rather than updating the constants casually.
TEST(Xoshiro256, StateWordsMatchSeedExpansionGolden) {
  const Xoshiro256 rng(42);
  const std::array<std::uint64_t, 4> words = rng.state();
  EXPECT_EQ(words[0], 0xBDD732262FEB6E95ULL);
  EXPECT_EQ(words[1], 0x28EFE333B266F103ULL);
  EXPECT_EQ(words[2], 0x47526757130F9F52ULL);
  EXPECT_EQ(words[3], 0x581CE1FF0E4AE394ULL);
}

TEST(Xoshiro256, FromStateResumesMidStream) {
  Xoshiro256 a(7);
  for (int k = 0; k < 13; ++k) a();  // advance into the stream
  Xoshiro256 b = Xoshiro256::from_state(a.state());
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, SetStateOverwritesPosition) {
  Xoshiro256 a(7);
  const auto mark = a.state();
  const std::uint64_t first = a();
  for (int k = 0; k < 50; ++k) a();
  a.set_state(mark);  // rewind
  EXPECT_EQ(a(), first);
}

// The captured state must be position-sensitive: consuming one value
// changes the words (no silent aliasing of streams).
TEST(Xoshiro256, StateAdvancesWithConsumption) {
  Xoshiro256 a(9);
  const auto before = a.state();
  (void)a();
  EXPECT_NE(before, a.state());
}

}  // namespace
}  // namespace cellflow
