// SmallVec (util/small_vec.hpp): the inline-capacity vector the round hot
// path stores NEPrev and its derivatives in. Two layers of pinning:
//
//   * directed tests for the inline→heap boundary (spill exactly at
//     N+1, storage never released on shrink, move semantics on both
//     sides of the boundary);
//   * a randomized differential test driving a SmallVec and a
//     std::vector oracle through the identical operation sequence —
//     push/pop/insert/erase/resize/sort/copy/move — and demanding
//     element-for-element equality after every step;
//   * the protocol-facing pin: NeighborSet holds sorted CellIds and
//     composes with the <algorithm> idioms signal code uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "core/cell_state.hpp"
#include "util/rng.hpp"
#include "util/small_vec.hpp"

namespace {

using namespace cellflow;

using SV = SmallVec<int, 4>;

TEST(SmallVec, StartsInlineAndEmpty) {
  const SV v;
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_EQ(SV::inline_capacity(), 4u);
}

TEST(SmallVec, SpillsToHeapExactlyPastInlineCapacity) {
  SV v;
  for (int k = 0; k < 4; ++k) {
    v.push_back(k);
    EXPECT_TRUE(v.is_inline()) << "k=" << k;
  }
  v.push_back(4);  // N+1: must spill
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 5u);
  EXPECT_GE(v.capacity(), 5u);
  for (int k = 0; k < 5; ++k) EXPECT_EQ(v[static_cast<std::size_t>(k)], k);
}

TEST(SmallVec, ShrinkNeverReleasesStorage) {
  SV v;
  for (int k = 0; k < 10; ++k) v.push_back(k);
  const std::size_t cap = v.capacity();
  const int* data = v.data();
  v.clear();
  EXPECT_EQ(v.capacity(), cap);
  EXPECT_EQ(v.data(), data);  // still the heap block, ready for reuse
  for (int k = 0; k < 10; ++k) v.push_back(k);
  EXPECT_EQ(v.capacity(), cap);  // refill allocated nothing
}

TEST(SmallVec, MoveStealsHeapButCopiesInline) {
  SV heap;
  for (int k = 0; k < 8; ++k) heap.push_back(k);
  const int* block = heap.data();
  SV stolen = std::move(heap);
  EXPECT_EQ(stolen.data(), block);  // heap block handed over, not copied
  EXPECT_EQ(stolen.size(), 8u);

  SV inl;
  inl.push_back(7);
  SV moved = std::move(inl);
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0], 7);
  EXPECT_TRUE(moved.is_inline());
}

TEST(SmallVec, InsertHandlesAliasedElement) {
  SV v = {1, 2, 3};
  v.insert(v.begin(), v[2]);  // inserting an element of v into v
  const SV expect = {3, 1, 2, 3};
  EXPECT_EQ(v, expect);
}

TEST(SmallVec, WorksWithNonTrivialElements) {
  SmallVec<std::string, 2> v;
  v.push_back("alpha");
  v.push_back("beta");
  v.push_back("gamma");  // spill with live std::strings
  v.erase(v.begin() + 1);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "alpha");
  EXPECT_EQ(v[1], "gamma");
}

// --- randomized differential against std::vector ----------------------

template <typename A, typename B>
void expect_same(const A& got, const B& oracle, std::uint64_t step) {
  ASSERT_EQ(got.size(), oracle.size()) << "step " << step;
  for (std::size_t k = 0; k < oracle.size(); ++k)
    ASSERT_EQ(got[k], oracle[k]) << "step " << step << " index " << k;
}

TEST(SmallVec, DifferentialAgainstVectorOracle) {
  for (const std::uint64_t seed : {11ull, 23ull, 47ull}) {
    Xoshiro256 rng(seed);
    SmallVec<int, 4> sv;
    std::vector<int> oracle;
    for (std::uint64_t step = 0; step < 4000; ++step) {
      const auto op = rng.below(10);
      const int val = static_cast<int>(rng.below(1000));
      switch (op) {
        case 0:
        case 1:
        case 2:  // weighted toward growth so both regimes are exercised
          sv.push_back(val);
          oracle.push_back(val);
          break;
        case 3:
          if (!oracle.empty()) {
            sv.pop_back();
            oracle.pop_back();
          }
          break;
        case 4: {
          const auto at = rng.below(oracle.size() + 1);
          sv.insert(sv.begin() + static_cast<std::ptrdiff_t>(at), val);
          oracle.insert(oracle.begin() + static_cast<std::ptrdiff_t>(at), val);
          break;
        }
        case 5:
          if (!oracle.empty()) {
            const auto at = rng.below(oracle.size());
            sv.erase(sv.begin() + static_cast<std::ptrdiff_t>(at));
            oracle.erase(oracle.begin() + static_cast<std::ptrdiff_t>(at));
          }
          break;
        case 6: {
          const auto n = rng.below(12);
          sv.resize(n);
          oracle.resize(n);
          break;
        }
        case 7:
          std::sort(sv.begin(), sv.end());
          std::sort(oracle.begin(), oracle.end());
          break;
        case 8: {  // copy round-trip
          SmallVec<int, 4> copy(sv);
          sv = copy;
          break;
        }
        case 9: {  // move round-trip (both directions of the boundary)
          SmallVec<int, 4> tmp(std::move(sv));
          sv = std::move(tmp);
          break;
        }
        default: break;
      }
      expect_same(sv, oracle, step);
    }
  }
}

// --- protocol-facing pins ---------------------------------------------

TEST(NeighborSet, LatticeDegreeNeverSpills) {
  // NEPrev holds at most the lattice degree many ids (4 square, 6 hex);
  // inline capacity 8 means the hot path never touches the allocator.
  NeighborSet ne;
  for (int k = 0; k < 6; ++k) ne.push_back(CellId{k, 0});
  EXPECT_TRUE(ne.is_inline());
  static_assert(NeighborSet::inline_capacity() == 8);
}

TEST(NeighborSet, SortedCellIdOrderingMatchesProtocolContract) {
  // Signal stores NEPrev sorted ascending (signal_step's precondition);
  // the std::sort/std::find idioms the phases use must keep working.
  NeighborSet ne = {CellId{2, 1}, CellId{0, 3}, CellId{1, 1}};
  std::sort(ne.begin(), ne.end());
  EXPECT_TRUE(std::is_sorted(ne.begin(), ne.end()));
  EXPECT_EQ(ne.front(), (CellId{0, 3}));
  EXPECT_EQ(ne.back(), (CellId{2, 1}));
  EXPECT_NE(std::find(ne.begin(), ne.end(), CellId{1, 1}), ne.end());
}

TEST(NeighborSet, ConvertsToSpanForChoosePolicies) {
  // ChoosePolicy::choose takes std::span<const CellId>; NeighborSet must
  // convert implicitly (contiguous + sized range).
  const NeighborSet ne = {CellId{0, 0}, CellId{1, 0}};
  const std::span<const CellId> view = ne;
  EXPECT_EQ(view.size(), 2u);
  EXPECT_EQ(view.data(), ne.data());
}

}  // namespace
