// Tests for Lemma 6 / Corollary 7: once failures cease, every target-
// connected cell's (dist, next) stabilizes to the BFS reference within
// O(N²) rounds — and stays there.
#include <gtest/gtest.h>

#include "core/choose.hpp"
#include "failure/failure_model.hpp"
#include "helpers.hpp"
#include "sim/observers.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

const Params kP(0.2, 0.1, 0.1);

// Checks exact agreement with the reference on every TC cell.
bool routing_agrees(const System& sys) {
  const auto rho = sys.reference_distances();
  for (const CellId id : sys.grid().all_cells()) {
    const Dist expect = rho[sys.grid().index_of(id)];
    if (expect.is_infinite()) continue;
    if (sys.cell(id).dist != expect) return false;
    if (id != sys.target()) {
      const OptCellId next = sys.cell(id).next;
      if (!next.has_value()) return false;
      if (rho[sys.grid().index_of(*next)].plus_one() != expect) return false;
    }
  }
  return true;
}

TEST(RouteStabilization, FreshSystemConvergesWithinDiameterRounds) {
  System sys = testing::make_column_system(8, kP);
  // Maximum ρ on the 8×8 grid from ⟨1,7⟩ is 13 (Manhattan diameter).
  testing::run_rounds(sys, 14);
  EXPECT_TRUE(routing_agrees(sys));
}

TEST(RouteStabilization, AgreementIsStableOnceReached) {
  System sys = testing::make_column_system(8, kP);
  testing::run_rounds(sys, 20);
  ASSERT_TRUE(routing_agrees(sys));
  for (int k = 0; k < 50; ++k) {
    sys.update();
    EXPECT_TRUE(routing_agrees(sys)) << "diverged at round " << sys.round();
  }
}

TEST(RouteStabilization, RecoversAfterWallFailure) {
  System sys = testing::make_column_system(8, kP);
  testing::run_rounds(sys, 20);
  // Drop a wall splitting the grid except one gap at j ∈ {0, 1}: cells
  // northeast of the wall must detour *south* first (a genuinely longer,
  // non-monotone path).
  for (int j = 2; j < 8; ++j) sys.fail(CellId{4, j});
  // O(N²) bound with slack: dist values must count up past stale
  // estimates; 4·N² = 256 is generous.
  bool ok = false;
  for (int k = 0; k < 256 && !ok; ++k) {
    sys.update();
    ok = routing_agrees(sys);
  }
  EXPECT_TRUE(ok);
  // ⟨7,7⟩ sat at Manhattan distance 6 before the wall; the detour through
  // the j ≤ 1 gap costs 18 hops.
  ASSERT_TRUE(sys.cell(CellId{7, 7}).dist.is_finite());
  EXPECT_EQ(sys.cell(CellId{7, 7}).dist.hops(), 18u);
}

TEST(RouteStabilization, MonitorReportsStabilizationRound) {
  System sys = testing::make_column_system(6, kP);
  ScriptedFailures failures({{10, CellId{1, 3}, false},
                             {10, CellId{2, 3}, false},
                             {40, CellId{1, 3}, true}});
  Simulator sim(sys, failures);
  RoutingStabilizationMonitor monitor;
  sim.add_observer(monitor);
  sim.run(300);
  ASSERT_TRUE(monitor.stabilized_at().has_value());
  // Stabilized only after the last topology change at round 40.
  EXPECT_GE(*monitor.stabilized_at(), 40u);
  EXPECT_TRUE(monitor.currently_agrees());
}

TEST(RouteStabilization, CorruptedDistValuesWashOut) {
  System sys = testing::make_column_system(8, kP);
  testing::run_rounds(sys, 20);
  // Corrupt every cell's control state with garbage (dist too LOW — the
  // hard direction, since too-high heals in one wavefront pass).
  Xoshiro256 rng(77);
  for (const CellId id : sys.grid().all_cells()) {
    if (id == sys.target()) continue;
    const auto fake = Dist::finite(rng.below(3));
    sys.corrupt_control_state(id, fake, std::nullopt, std::nullopt,
                              std::nullopt);
  }
  bool ok = false;
  for (int k = 0; k < 256 && !ok; ++k) {
    sys.update();
    ok = routing_agrees(sys);
  }
  EXPECT_TRUE(ok);
}

// Corollary 7 sweep: measure stabilization time after a burst of random
// failures on N×N grids and assert the O(N²) bound (with constant 4).
class StabilizationBound : public ::testing::TestWithParam<int> {};

TEST_P(StabilizationBound, WithinFourNSquaredOfLastFail) {
  const int n = GetParam();
  SystemConfig cfg;
  cfg.side = n;
  cfg.params = kP;
  cfg.sources = {};
  cfg.target = CellId{n / 2, n / 2};
  System sys(cfg, nullptr, std::make_unique<NullSource>());
  testing::run_rounds(sys, static_cast<std::uint64_t>(2 * n));

  // Fail ~20% of cells (never the target), then measure recovery time.
  Xoshiro256 rng(static_cast<std::uint64_t>(n) * 1000 + 7);
  for (const CellId id : sys.grid().all_cells()) {
    if (id != cfg.target && rng.bernoulli(0.2)) sys.fail(id);
  }
  std::uint64_t rounds = 0;
  const auto bound = static_cast<std::uint64_t>(4 * n * n);
  while (!routing_agrees(sys) && rounds < bound) {
    sys.update();
    ++rounds;
  }
  EXPECT_TRUE(routing_agrees(sys))
      << "not stabilized after " << rounds << " rounds on " << n << "x" << n;
}

INSTANTIATE_TEST_SUITE_P(GridSizes, StabilizationBound,
                         ::testing::Values(4, 6, 8, 12, 16, 24));

}  // namespace
}  // namespace cellflow
