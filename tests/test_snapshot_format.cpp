// Adversarial decoder tests for the snapshot wire format (DESIGN.md
// §11): a snapshot reader is a parser of untrusted bytes, so every
// corruption must surface as a typed SnapshotError — never UB, never a
// partial restore. Exercised here: truncation at EVERY byte boundary,
// a flipped bit in EVERY byte, wrong magic/version, and checksum-valid
// crafted buffers (duplicate/unknown/out-of-order tags, short and
// overlong sections, dangling section headers, lying element counts,
// non-0/1 booleans). After every failed restore the target engine's
// digest is unchanged — atomicity under attack, not just under success.
// The ASan/UBSan preset (cmake --preset asan) runs this suite with
// -fsanitize=address,undefined to turn latent UB into hard failures.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/system.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/wire.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

using snapshot::Errc;
using snapshot::SnapshotError;

SystemConfig small_config() {
  SystemConfig cfg;
  cfg.side = 4;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 3};
  return cfg;
}

/// A real snapshot with nonempty cells (entities in flight).
std::vector<std::uint8_t> sample_snapshot(System& sys) {
  for (int r = 0; r < 25; ++r) sys.update();
  return snapshot::save(sys);
}

/// Strips the trailing checksum and re-appends the correct one — the
/// tool for crafting checksum-valid malformed buffers (fnv1a is exposed
/// by wire.hpp exactly for this).
std::vector<std::uint8_t> refix_checksum(std::vector<std::uint8_t> b) {
  b.resize(b.size() - 8);
  const std::uint64_t c =
      snapshot::fnv1a(std::span<const std::uint8_t>(b.data(), b.size()));
  for (int k = 0; k < 8; ++k) {
    b.push_back(static_cast<std::uint8_t>((c >> (8 * k)) & 0xFFu));
  }
  return b;
}

/// Expects restore to throw and the engine to be untouched.
void expect_rejected(System& sys, const std::vector<std::uint8_t>& bytes,
                     const char* what) {
  const std::uint64_t before = snapshot::state_digest(sys);
  EXPECT_THROW(snapshot::restore(sys, bytes), SnapshotError) << what;
  EXPECT_EQ(snapshot::state_digest(sys), before)
      << what << ": failed restore mutated the engine";
}

TEST(SnapshotFormat, TruncationAtEveryByteBoundaryIsTyped) {
  System sys(small_config());
  const auto bytes = sample_snapshot(sys);
  System target(small_config());
  const std::uint64_t before = snapshot::state_digest(target);

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() +
                                               static_cast<std::ptrdiff_t>(
                                                   len));
    try {
      snapshot::restore(target, prefix);
      FAIL() << "truncation to " << len << " bytes accepted";
    } catch (const SnapshotError& e) {
      if (len < 16) {
        EXPECT_EQ(e.code(), Errc::kTruncated) << "len=" << len;
      }
      // Longer prefixes fail as kTruncated or kChecksumMismatch — any
      // typed code is acceptable; UB or std::bad_alloc is not.
    }
  }
  EXPECT_EQ(snapshot::state_digest(target), before);
}

TEST(SnapshotFormat, FlippedBitInEveryByteIsTyped) {
  System sys(small_config());
  const auto bytes = sample_snapshot(sys);
  System target(small_config());
  const std::uint64_t before = snapshot::state_digest(target);

  for (std::size_t at = 0; at < bytes.size(); ++at) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[at] ^= static_cast<std::uint8_t>(1u << (at % 8));
    try {
      snapshot::restore(target, mutated);
      FAIL() << "bit flip at byte " << at << " accepted";
    } catch (const SnapshotError& e) {
      // Magic and version are checked before the checksum; everything
      // else (payload or trailer) must be caught by the checksum, so no
      // flipped payload bit is ever parsed.
      if (at < 4) {
        EXPECT_EQ(e.code(), Errc::kBadMagic) << "at=" << at;
      } else if (at < 8) {
        EXPECT_EQ(e.code(), Errc::kBadVersion) << "at=" << at;
      } else {
        EXPECT_EQ(e.code(), Errc::kChecksumMismatch) << "at=" << at;
      }
    }
  }
  EXPECT_EQ(snapshot::state_digest(target), before);
}

TEST(SnapshotFormat, WrongMagicAndVersion) {
  System sys(small_config());
  auto bytes = sample_snapshot(sys);
  System target(small_config());

  auto wrong_magic = bytes;
  wrong_magic[0] = 'X';
  try {
    snapshot::restore(target, wrong_magic);
    FAIL();
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), Errc::kBadMagic);
  }

  // A replay log is not a snapshot: its magic must be rejected even
  // with a valid checksum.
  snapshot::Writer w({'C', 'F', 'R', 'L'}, 1);
  w.begin_section(1);
  w.u64(0);
  w.end_section();
  expect_rejected(target, w.finish(), "replay-log magic");

  auto future = bytes;
  future[4] = 9;  // version 9
  future = refix_checksum(future);
  try {
    snapshot::restore(target, future);
    FAIL();
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), Errc::kBadVersion);
  }
}

/// Returns [start, end) of the section with `tag` (header included),
/// for byte surgery on a real snapshot.
std::pair<std::size_t, std::size_t> section_span(
    const std::vector<std::uint8_t>& bytes, std::uint32_t want) {
  std::size_t at = 8;
  for (;;) {
    const auto tag = static_cast<std::uint32_t>(
        static_cast<std::uint32_t>(bytes[at]) |
        (static_cast<std::uint32_t>(bytes[at + 1]) << 8) |
        (static_cast<std::uint32_t>(bytes[at + 2]) << 16) |
        (static_cast<std::uint32_t>(bytes[at + 3]) << 24));
    std::uint64_t len = 0;
    for (std::size_t k = 0; k < 8; ++k) {
      len |= static_cast<std::uint64_t>(bytes[at + 4 + k]) << (8 * k);
    }
    const std::size_t end = at + 12 + static_cast<std::size_t>(len);
    if (tag == want) return {at, end};
    at = end;
  }
}

/// Section-order violations need the PRECEDING sections to parse cleanly
/// (the decoder is streaming), so these are surgeries on a real snapshot
/// rather than minimal crafted buffers.
TEST(SnapshotFormat, DuplicateAndOutOfOrderAndUnknownTags) {
  System sys(small_config());
  const auto bytes = sample_snapshot(sys);
  System target(small_config());

  {
    // Replay the header section immediately after itself.
    auto mutated = bytes;
    const auto [h0, h1] = section_span(mutated, 1);
    const std::vector<std::uint8_t> header(mutated.begin() +
                                               static_cast<std::ptrdiff_t>(h0),
                                           mutated.begin() +
                                               static_cast<std::ptrdiff_t>(h1));
    mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(h1),
                   header.begin(), header.end());
    mutated = refix_checksum(mutated);
    const std::uint64_t before = snapshot::state_digest(target);
    try {
      snapshot::restore(target, mutated);
      FAIL();
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.code(), Errc::kDuplicateTag);
    }
    EXPECT_EQ(snapshot::state_digest(target), before);
  }
  {
    // Swap the header (tag 1) and config (tag 2) sections: config parses
    // fine on its own, then tag 1 arrives after tag 2.
    auto mutated = bytes;
    const auto [h0, h1] = section_span(mutated, 1);
    const auto [c0, c1] = section_span(mutated, 2);
    ASSERT_EQ(h1, c0);
    std::vector<std::uint8_t> swapped(mutated.begin(),
                                      mutated.begin() +
                                          static_cast<std::ptrdiff_t>(h0));
    swapped.insert(swapped.end(),
                   mutated.begin() + static_cast<std::ptrdiff_t>(c0),
                   mutated.begin() + static_cast<std::ptrdiff_t>(c1));
    swapped.insert(swapped.end(),
                   mutated.begin() + static_cast<std::ptrdiff_t>(h0),
                   mutated.begin() + static_cast<std::ptrdiff_t>(h1));
    swapped.insert(swapped.end(),
                   mutated.begin() + static_cast<std::ptrdiff_t>(c1),
                   mutated.end());
    swapped = refix_checksum(swapped);
    try {
      snapshot::restore(target, swapped);
      FAIL();
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.code(), Errc::kOutOfOrderTag);
    }
  }
  {
    // A tag outside the schema fails before its payload is parsed, so a
    // minimal crafted buffer suffices.
    snapshot::Writer w({'C', 'F', 'S', 'N'}, 1);
    w.begin_section(99);
    w.end_section();
    try {
      snapshot::restore(target, w.finish());
      FAIL();
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.code(), Errc::kUnknownTag);
    }
  }
}

TEST(SnapshotFormat, MissingRequiredSections) {
  System target(small_config());
  snapshot::Writer w({'C', 'F', 'S', 'N'}, 1);
  w.begin_section(1);  // header only: kind 0, counters
  w.u8(0);
  w.u64(0);
  w.u64(0);
  w.u64(0);
  w.end_section();
  try {
    snapshot::restore(target, w.finish());
    FAIL();
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), Errc::kMissingSection);
  }
}

TEST(SnapshotFormat, SectionWithExtraBytesIsTrailingBytes) {
  System target(small_config());
  snapshot::Writer w({'C', 'F', 'S', 'N'}, 1);
  w.begin_section(1);
  w.u8(0);
  w.u64(0);
  w.u64(0);
  w.u64(0);
  w.u8(0xAA);  // one byte beyond the header's fields
  w.end_section();
  try {
    snapshot::restore(target, w.finish());
    FAIL();
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), Errc::kTrailingBytes);
  }
}

TEST(SnapshotFormat, SectionShorterThanItsFieldsIsMalformed) {
  System target(small_config());
  snapshot::Writer w({'C', 'F', 'S', 'N'}, 1);
  w.begin_section(1);
  w.u8(0);  // header then ends; the u64 reads must hit the boundary
  w.end_section();
  try {
    snapshot::restore(target, w.finish());
    FAIL();
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), Errc::kMalformed);
  }
}

TEST(SnapshotFormat, DanglingPartialSectionHeader) {
  System sys(small_config());
  auto bytes = sample_snapshot(sys);
  // Insert 5 stray bytes where the next section header would start (the
  // trailer slot is refilled by refix_checksum).
  for (int k = 0; k < 5; ++k) {
    bytes.insert(bytes.end() - 8, 0x7F);
  }
  bytes = refix_checksum(bytes);
  System target(small_config());
  try {
    snapshot::restore(target, bytes);
    FAIL();
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), Errc::kMalformed);
  }
}

TEST(SnapshotFormat, SectionLengthOverrunsBuffer) {
  System target(small_config());
  snapshot::Writer w({'C', 'F', 'S', 'N'}, 1);
  w.begin_section(1);
  w.u64(0);
  w.end_section();
  auto bytes = w.finish();
  // The section length field sits at offset 12 (magic 4 + version 4 +
  // tag 4); inflate it past the buffer and refix the checksum.
  bytes[12] = 0xFF;
  bytes[13] = 0xFF;
  bytes = refix_checksum(bytes);
  try {
    snapshot::restore(target, bytes);
    FAIL();
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), Errc::kMalformed);
  }
}

TEST(SnapshotFormat, LyingElementCountIsMalformedNotBadAlloc) {
  System sys(small_config());
  auto bytes = sample_snapshot(sys);
  // The cells section's count is bounded by Reader::count(): find the
  // section by walking tags, then blast the count to 2^56.
  // Offsets: 8 (envelope) then per section 12 + len.
  std::size_t at = 8;
  for (;;) {
    const std::uint32_t tag = static_cast<std::uint32_t>(
        static_cast<std::uint32_t>(bytes[at]) |
        (static_cast<std::uint32_t>(bytes[at + 1]) << 8) |
        (static_cast<std::uint32_t>(bytes[at + 2]) << 16) |
        (static_cast<std::uint32_t>(bytes[at + 3]) << 24));
    std::uint64_t len = 0;
    for (int k = 0; k < 8; ++k) {
      len |= static_cast<std::uint64_t>(bytes[at + 4 +
                                              static_cast<std::size_t>(k)])
             << (8 * k);
    }
    if (tag == 3) {  // cells
      // First payload field is the u64 cell count.
      bytes[at + 12 + 7] = 0xFF;
      break;
    }
    at += 12 + static_cast<std::size_t>(len);
  }
  bytes = refix_checksum(bytes);
  System target(small_config());
  try {
    snapshot::restore(target, bytes);
    FAIL();
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), Errc::kMalformed);
  }
}

TEST(SnapshotFormat, NonBinaryBooleanIsMalformed) {
  System sys(small_config());
  auto bytes = sample_snapshot(sys);
  // First cells-section payload byte after the count is the first
  // cell's `failed` boolean. Walk to tag 3 as above.
  std::size_t at = 8;
  for (;;) {
    const std::uint32_t tag = static_cast<std::uint32_t>(
        static_cast<std::uint32_t>(bytes[at]) |
        (static_cast<std::uint32_t>(bytes[at + 1]) << 8) |
        (static_cast<std::uint32_t>(bytes[at + 2]) << 16) |
        (static_cast<std::uint32_t>(bytes[at + 3]) << 24));
    std::uint64_t len = 0;
    for (int k = 0; k < 8; ++k) {
      len |= static_cast<std::uint64_t>(bytes[at + 4 +
                                              static_cast<std::size_t>(k)])
             << (8 * k);
    }
    if (tag == 3) {
      bytes[at + 12 + 8] = 2;  // boolean must be 0/1
      break;
    }
    at += 12 + static_cast<std::size_t>(len);
  }
  bytes = refix_checksum(bytes);
  System target(small_config());
  try {
    snapshot::restore(target, bytes);
    FAIL();
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), Errc::kMalformed);
  }
}

TEST(SnapshotFormat, EmptyBufferIsTruncated) {
  System target(small_config());
  try {
    snapshot::restore(target, std::vector<std::uint8_t>{});
    FAIL();
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), Errc::kTruncated);
  }
}

TEST(SnapshotFormat, ErrcNamesAreDistinct) {
  // to_string backs error reporting in the CLI; collisions would make
  // two failure classes indistinguishable in logs.
  const Errc all[] = {Errc::kTruncated, Errc::kBadMagic, Errc::kBadVersion,
                      Errc::kChecksumMismatch, Errc::kUnknownTag,
                      Errc::kDuplicateTag, Errc::kOutOfOrderTag,
                      Errc::kMissingSection, Errc::kMalformed,
                      Errc::kTrailingBytes, Errc::kConfigMismatch};
  for (std::size_t i = 0; i < std::size(all); ++i) {
    for (std::size_t j = i + 1; j < std::size(all); ++j) {
      EXPECT_STRNE(snapshot::to_string(all[i]), snapshot::to_string(all[j]));
    }
  }
}

}  // namespace
}  // namespace cellflow
