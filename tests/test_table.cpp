// Tests for the aligned console table renderer used by the benches.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace cellflow {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable t;
  t.set_header({"rs", "v=0.1", "v=0.2"});
  t.add_row({"0.05", "0.035", "0.07"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("rs"), std::string::npos);
  EXPECT_NE(s.find("v=0.2"), std::string::npos);
  EXPECT_NE(s.find("0.07"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-label", "22"});
  const std::string s = t.to_string();
  // Every line must have the same width (right-aligned numeric column).
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  int lines = 0;
  while (start < s.size()) {
    const std::size_t end = s.find('\n', start);
    const std::size_t len = end - start;
    if (lines > 0) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 4);  // header + rule + 2 rows
}

TEST(TextTable, NumericRowFormatsSignificantDigits) {
  TextTable t;
  t.set_header({"label", "a", "b"});
  t.add_numeric_row("row", {0.123456, 1234.5678}, 3);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("0.123"), std::string::npos);
  EXPECT_NE(s.find("1.23e+03"), std::string::npos);
}

TEST(TextTable, MismatchedRowWidthViolatesContract) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TextTable, RenderWithoutHeaderViolatesContract) {
  const TextTable t;
  EXPECT_THROW((void)t.to_string(), ContractViolation);
}

TEST(TextTable, EmptyHeaderRejected) {
  TextTable t;
  EXPECT_THROW(t.set_header({}), ContractViolation);
}

TEST(FormatSig, RendersRequestedPrecision) {
  EXPECT_EQ(format_sig(0.123456, 3), "0.123");
  EXPECT_EQ(format_sig(2.0, 4), "2");
  EXPECT_EQ(format_sig(12345.0, 2), "1.2e+04");
}

}  // namespace
}  // namespace cellflow
