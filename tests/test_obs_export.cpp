// Exporter tests: golden byte-exact Prometheus/JSONL renderings, the
// parser/validator round-trips the smoke tool relies on, Chrome trace
// structure, and the export pipeline end-to-end on the pinned tiny 3×3
// scenario (cross-checked against the golden trace of test_trace.cpp).
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/choose.hpp"
#include "failure/failure_model.hpp"
#include "obs/profiler.hpp"
#include "sim/observers.hpp"
#include "sim/simulator.hpp"

namespace cellflow {
namespace {

/// A small fully hand-specified registry — every exporter byte is
/// predictable by inspection.
void fill_reference(obs::MetricsRegistry& reg) {
  reg.counter("cf_events_total", "Events.", {{"kind", "a"}}).inc(3);
  reg.gauge("cf_level", "Level.").set(1.5);
  obs::Histogram& h = reg.histogram("cf_size", "Sizes.", {1.0, 2.0});
  h.observe(1.0);
  h.observe(5.0);
}

constexpr const char* kGoldenProm =
    "# HELP cf_events_total Events.\n"
    "# TYPE cf_events_total counter\n"
    "cf_events_total{kind=\"a\"} 3\n"
    "# HELP cf_level Level.\n"
    "# TYPE cf_level gauge\n"
    "cf_level 1.5\n"
    "# HELP cf_size Sizes.\n"
    "# TYPE cf_size histogram\n"
    "cf_size_bucket{le=\"1\"} 1\n"
    "cf_size_bucket{le=\"2\"} 1\n"
    "cf_size_bucket{le=\"+Inf\"} 2\n"
    "cf_size_sum 6\n"
    "cf_size_count 2\n";

constexpr const char* kGoldenJsonl =
    "{\"round\":7,\"metrics\":["
    "{\"name\":\"cf_events_total\",\"type\":\"counter\","
    "\"labels\":{\"kind\":\"a\"},\"value\":3},"
    "{\"name\":\"cf_level\",\"type\":\"gauge\",\"labels\":{},\"value\":1.5},"
    "{\"name\":\"cf_size\",\"type\":\"histogram\",\"labels\":{},"
    "\"count\":2,\"sum\":6,\"buckets\":["
    "{\"le\":\"1\",\"count\":1},{\"le\":\"2\",\"count\":1},"
    "{\"le\":\"+Inf\",\"count\":2}]}"
    "]}\n";

TEST(ObsExport, GoldenPrometheusRendering) {
  obs::MetricsRegistry reg;
  fill_reference(reg);
  EXPECT_EQ(obs::to_prometheus(reg), kGoldenProm);
}

TEST(ObsExport, GoldenJsonlRendering) {
  obs::MetricsRegistry reg;
  fill_reference(reg);
  EXPECT_EQ(obs::jsonl_snapshot(reg, 7), kGoldenJsonl);
}

TEST(ObsExport, FormatDouble) {
  EXPECT_EQ(obs::format_double(0.0), "0");
  EXPECT_EQ(obs::format_double(3.0), "3");
  EXPECT_EQ(obs::format_double(-17.0), "-17");
  EXPECT_EQ(obs::format_double(1.5), "1.5");
  EXPECT_EQ(obs::format_double(0.1), "0.1");
  EXPECT_EQ(obs::format_double(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(obs::format_double(-std::numeric_limits<double>::infinity()),
            "-Inf");
  EXPECT_EQ(obs::format_double(std::nan("")), "NaN");
}

TEST(ObsExport, JsonEscape) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ObsExport, ParsePrometheusRoundTripsTheExporter) {
  obs::MetricsRegistry reg;
  fill_reference(reg);
  const auto samples = obs::parse_prometheus(obs::to_prometheus(reg));
  ASSERT_EQ(samples.size(), 7u);  // 1 counter + 1 gauge + 3 buckets + sum/cnt
  EXPECT_EQ(samples[0].name, "cf_events_total");
  EXPECT_EQ(samples[0].labels, (obs::Labels{{"kind", "a"}}));
  EXPECT_EQ(samples[0].value, 3.0);
  EXPECT_EQ(samples[1].name, "cf_level");
  EXPECT_EQ(samples[1].value, 1.5);
  EXPECT_EQ(samples[4].name, "cf_size_bucket");
  EXPECT_EQ(samples[4].labels, (obs::Labels{{"le", "+Inf"}}));
  EXPECT_EQ(samples[4].value, 2.0);  // cumulative count in the +Inf bucket
  EXPECT_EQ(samples[5].name, "cf_size_sum");
  EXPECT_EQ(samples[5].value, 6.0);
  EXPECT_EQ(samples[6].name, "cf_size_count");
  EXPECT_EQ(samples[6].value, 2.0);
}

TEST(ObsExport, ParsePrometheusRejectsMalformedLines) {
  EXPECT_THROW(obs::parse_prometheus("0bad_name 1\n"), std::runtime_error);
  EXPECT_THROW(obs::parse_prometheus("cf_x{k=\"v\" 1\n"), std::runtime_error);
  EXPECT_THROW(obs::parse_prometheus("cf_x{k=v} 1\n"), std::runtime_error);
  EXPECT_THROW(obs::parse_prometheus("cf_x\n"), std::runtime_error);
  EXPECT_THROW(obs::parse_prometheus("cf_x abc\n"), std::runtime_error);
  EXPECT_TRUE(obs::parse_prometheus("# just a comment\n\n").empty());
}

TEST(ObsExport, ValidateJsonAcceptsAndRejects) {
  obs::validate_json("{}");
  obs::validate_json("[1,2.5,-3,1e9,\"s\",true,false,null]");
  obs::validate_json("{\"a\":{\"b\":[{}]}}");
  EXPECT_THROW(obs::validate_json(""), std::runtime_error);
  EXPECT_THROW(obs::validate_json("{"), std::runtime_error);
  EXPECT_THROW(obs::validate_json("{} trailing"), std::runtime_error);
  EXPECT_THROW(obs::validate_json("{'a':1}"), std::runtime_error);
  EXPECT_THROW(obs::validate_json("[01]"), std::runtime_error);
  EXPECT_THROW(obs::validate_json("\"\x01\""), std::runtime_error);
}

TEST(ObsExport, ChromeTraceIsValidJsonWithShardTracks) {
  obs::PhaseProfiler prof;
  const auto t0 = obs::PhaseProfiler::Clock::now();
  prof.record("route", 0, -1, t0, t0 + std::chrono::microseconds(4));
  prof.record("route", 0, 1, t0, t0 + std::chrono::microseconds(2));
  const std::string trace = obs::to_chrome_trace(prof);
  obs::validate_json(trace);
  // Phase span on tid 0, shard 1's slice on tid 2.
  EXPECT_NE(trace.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ObsExport, EmptyExportsAreWellFormed) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(obs::to_prometheus(reg), "");
  obs::validate_json(obs::jsonl_snapshot(reg, 0));
  obs::PhaseProfiler prof;
  obs::validate_json(obs::to_chrome_trace(prof));
}

TEST(ObsExport, CsvFieldAsJsonStrictNumberGrammar) {
  // Bare iff the field matches RFC 8259 §6 exactly. strtod-accepted
  // spellings outside that grammar must stay quoted strings, or the
  // sidecars stop being valid JSON.
  for (const char* bare : {"0", "-0", "20", "-17", "1.5", "-0.25", "1e9",
                           "2.5E+2", "1e-3", "0.0001", "9007199254740993"}) {
    EXPECT_EQ(obs::csv_field_as_json(bare), bare) << "quoted '" << bare << "'";
  }
  for (const char* quoted : {"5.", ".5", "+1", "007", "1.", "--1", "1e",
                             "1e+", "0x1p3", "nan", "inf", "Inf", "NaN",
                             "1 ", " 1", "1,5", "", "route", "1.5.2"}) {
    EXPECT_EQ(obs::csv_field_as_json(quoted),
              '"' + obs::json_escape(quoted) + '"')
        << "bare '" << quoted << "'";
  }
}

TEST(ObsExport, CsvBlockAsJsonGolden) {
  // Pins the exact sidecar series bytes for a representative bench
  // console capture (table noise before the block, trailer after the
  // blank line that ends it).
  const std::string console =
      "=== some bench ===\n"
      "  n   rate\n"
      "  20  0.5\n"
      "\n"
      "CSV:\n"
      "n,rate,label\n"
      "20,0.5,sparse\n"
      "100,1e-3,dense.\n"
      "\n"
      "done\n";
  const std::string json = obs::csv_block_as_json(console);
  EXPECT_EQ(json,
            "{\"header\":[\"n\",\"rate\",\"label\"],"
            "\"rows\":[[20,0.5,\"sparse\"],[100,1e-3,\"dense.\"]]}");
  obs::validate_json(json);
}

TEST(ObsExport, CsvBlockAsJsonWithoutBlockIsEmptyAndValid) {
  const std::string json = obs::csv_block_as_json("no csv here\n");
  EXPECT_EQ(json, "{\"header\":[],\"rows\":[]}");
  obs::validate_json(json);
}

// End-to-end on the pinned tiny scenario (the same configuration whose
// trace test_trace.cpp pins golden): the exported counters must agree
// with the trace-derived event totals — 6 injections, 6 boundary
// crossings of which 2 are consumptions, 25 rounds.
TEST(ObsExport, TinyScenarioExportMatchesGoldenTrace) {
  SystemConfig cfg;
  cfg.side = 3;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 2};
  System sys(cfg, make_choose_policy("round-robin", 1));
  obs::MetricsRegistry reg;
  sys.set_metrics(&reg);
  NoFailures none;
  Simulator sim(sys, none);
  MetricsObserver mobs(reg);
  std::ostringstream jsonl;
  mobs.stream_jsonl(&jsonl, 10);
  sim.add_observer(mobs);
  sim.run(25);

  const auto value = [&](std::string_view name) -> double {
    for (const obs::PromSample& s : obs::parse_prometheus(to_prometheus(reg)))
      if (s.name == name) return s.value;
    ADD_FAILURE() << "sample not found: " << name;
    return -1.0;
  };
  EXPECT_EQ(value("cellflow_rounds_total"), 25.0);
  EXPECT_EQ(value("cellflow_source_injections_total"), 6.0);
  EXPECT_EQ(value("cellflow_move_transfers_total"), 6.0);
  EXPECT_EQ(value("cellflow_move_consumptions_total"), 2.0);
  EXPECT_EQ(value("cellflow_population"), 4.0);  // 6 injected - 2 consumed
  EXPECT_EQ(value("cellflow_round"), 24.0);      // last completed round

  // The JSONL stream carries 2 periodic lines (rounds 10, 20) + 1 final.
  const std::string stream = std::move(jsonl).str();
  std::size_t lines = 0;
  for (const char c : stream) lines += c == '\n' ? 1u : 0u;
  EXPECT_EQ(lines, 3u);
  std::istringstream in(stream);
  std::string line;
  while (std::getline(in, line)) obs::validate_json(line);
}

}  // namespace
}  // namespace cellflow
