// EngineTelemetry contract tests (DESIGN.md §7): timings live OUTSIDE
// the determinism contract, but the metric *event structure* lives
// inside it — one histogram observation per round per family, one
// imbalance observation per phase per round — so the observation COUNTS
// must be bit-identical across ParallelPolicy modes and thread counts
// even though every observed value differs. Also pins: telemetry is
// observation-only (attaching it perturbs no protocol state), the
// component decomposition actually explains the round wall clock, the
// WorkerTimings partition identity, and the worker/counter tracks in
// the Chrome-trace export.
#include "obs/engine_telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/thread_pool.hpp"

namespace cellflow {
namespace {

SystemConfig telemetry_config() {
  SystemConfig cfg;
  cfg.side = 8;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.target = CellId{7, 4};
  cfg.sources = {CellId{0, 1}, CellId{0, 6}};
  return cfg;
}

/// Every Prometheus line that carries an observation/sample COUNT (the
/// deterministic part of a histogram family) — values and sums are
/// timing-dependent and excluded.
std::vector<std::string> count_lines(const std::string& prom) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < prom.size()) {
    const std::size_t eol = prom.find('\n', pos);
    const std::string line = prom.substr(pos, eol - pos);
    if (line.find("_count") != std::string::npos) out.push_back(line);
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return out;
}

std::uint64_t run_with_telemetry(const ParallelPolicy& policy, int rounds,
                                 std::string* prom_out) {
  System sys(telemetry_config());
  sys.set_parallel_policy(policy);
  obs::MetricsRegistry reg;
  obs::EngineTelemetry telemetry(reg);
  sys.set_telemetry(&telemetry);
  for (int r = 0; r < rounds; ++r) sys.update();
  if (prom_out != nullptr) *prom_out = obs::to_prometheus(reg);
  return sys.total_arrivals();
}

TEST(Telemetry, ObservationCountsIdenticalAcrossThreadCounts) {
  constexpr int kRounds = 40;
  std::string serial_prom;
  const std::uint64_t serial_arrivals =
      run_with_telemetry(ParallelPolicy::serial(), kRounds, &serial_prom);
  const std::vector<std::string> serial_counts = count_lines(serial_prom);
  ASSERT_FALSE(serial_counts.empty());
  for (const int threads : {1, 2, 4}) {
    std::string prom;
    const std::uint64_t arrivals =
        run_with_telemetry(ParallelPolicy::parallel(threads), kRounds, &prom);
    EXPECT_EQ(arrivals, serial_arrivals) << threads << " threads";
    EXPECT_EQ(count_lines(prom), serial_counts)
        << "observation counts diverged at " << threads << " threads";
  }
}

TEST(Telemetry, AttachingTelemetryPerturbsNoProtocolState) {
  System bare(telemetry_config());
  System observed(telemetry_config());
  obs::MetricsRegistry reg;
  obs::EngineTelemetry telemetry(reg);
  observed.set_telemetry(&telemetry);
  for (int r = 0; r < 60; ++r) {
    bare.update();
    observed.update();
  }
  EXPECT_EQ(bare.total_arrivals(), observed.total_arrivals());
  EXPECT_EQ(bare.total_injected(), observed.total_injected());
  for (const CellId id : bare.grid().all_cells()) {
    const CellState& a = bare.cell(id);
    const CellState& b = observed.cell(id);
    ASSERT_EQ(a.dist, b.dist) << to_string(id);
    ASSERT_EQ(a.next, b.next) << to_string(id);
    ASSERT_EQ(a.token, b.token) << to_string(id);
    ASSERT_EQ(a.signal, b.signal) << to_string(id);
    ASSERT_EQ(a.members, b.members) << to_string(id);
  }
}

TEST(Telemetry, ComponentsExplainTheRoundOnTheSerialEngine) {
  System sys(telemetry_config());
  obs::MetricsRegistry reg;
  obs::EngineTelemetry telemetry(reg);
  sys.set_telemetry(&telemetry);
  for (int r = 0; r < 50; ++r) sys.update();
  const obs::EngineTelemetry::Totals& t = telemetry.totals();
  EXPECT_EQ(t.rounds, 50u);
  EXPECT_GT(t.round_ns, 0u);
  EXPECT_GT(t.work_ns, 0u);
  // Serial engine: no pool, so the pooled components must be zero and
  // work alone must explain (almost) the whole round. The 0.5 floor is
  // deliberately far below the ~0.97 measured even on a loaded box —
  // the test pins "accounting works", not a performance number.
  EXPECT_EQ(t.barrier_wait_ns, 0u);
  EXPECT_EQ(t.dispatch_ns, 0u);
  EXPECT_EQ(t.merge_ns, 0u);
  EXPECT_GT(t.coverage(), 0.5);
  EXPECT_LE(t.accounted_ns(), t.round_ns);
  EXPECT_GE(t.serial_fraction(), 0.0);
  EXPECT_LE(t.serial_fraction(), 1.0);
}

TEST(Telemetry, ComponentsDecomposePooledRounds) {
  System sys(telemetry_config());
  sys.set_parallel_policy(ParallelPolicy::parallel(2));
  obs::MetricsRegistry reg;
  obs::EngineTelemetry telemetry(reg);
  sys.set_telemetry(&telemetry);
  for (int r = 0; r < 50; ++r) sys.update();
  const obs::EngineTelemetry::Totals& t = telemetry.totals();
  EXPECT_EQ(t.rounds, 50u);
  EXPECT_GT(t.work_ns, 0u);
  // Pooled rounds went through dispatch at least once per phase.
  EXPECT_GT(t.dispatch_ns + t.barrier_wait_ns, 0u);
  // Wall-equivalent components of a round cannot exceed its wall (each
  // pooled phase's components sum to exactly that phase's batch span);
  // a generous epsilon absorbs the per-phase integer truncation.
  EXPECT_LE(t.accounted_ns(), t.round_ns + t.rounds * 64);
  EXPECT_GT(t.coverage(), 0.3);
  const double imb_mean =
      t.imbalance_route_sum / static_cast<double>(t.rounds);
  EXPECT_GE(imb_mean, 1.0);
}

TEST(Telemetry, ResetTotalsZeroesTheAggregateOnly) {
  System sys(telemetry_config());
  obs::MetricsRegistry reg;
  obs::EngineTelemetry telemetry(reg);
  sys.set_telemetry(&telemetry);
  for (int r = 0; r < 5; ++r) sys.update();
  ASSERT_EQ(telemetry.totals().rounds, 5u);
  telemetry.reset_totals();
  EXPECT_EQ(telemetry.totals().rounds, 0u);
  EXPECT_EQ(telemetry.totals().round_ns, 0u);
  sys.update();
  EXPECT_EQ(telemetry.totals().rounds, 1u);
}

TEST(Telemetry, WorkerTimingsChainPartitionsTheBatch) {
  // The attribution identity the engine's decomposition rests on:
  // busy >= work (busy adds queue-claim and preemption gaps), and every
  // participating worker contributed dispatch/busy/barrier tallies.
  ThreadPool pool(3);
  pool.set_timing(true);
  std::vector<int> hits(64, 0);
  for (int batch = 0; batch < 20; ++batch)
    pool.run(hits.size(), [&](std::size_t k) { ++hits[k]; });
  const WorkerTimings t = pool.total_timings();
  EXPECT_EQ(t.tasks, 20u * 64u);
  EXPECT_GE(t.busy_ns, t.work_ns);
  EXPECT_GT(t.batches, 0u);
  // Delta arithmetic (the engine reads cumulative tallies) stays exact.
  const WorkerTimings zero = t - t;
  EXPECT_EQ(zero.work_ns, 0u);
  EXPECT_EQ(zero.busy_ns, 0u);
  EXPECT_EQ(zero.tasks, 0u);
}

TEST(Telemetry, TraceExportCarriesWorkerLanesAndCounterTracks) {
  System sys(telemetry_config());
  sys.set_parallel_policy(ParallelPolicy::parallel(2));
  obs::MetricsRegistry reg;
  obs::EngineTelemetry telemetry(reg);
  obs::PhaseProfiler profiler;
  sys.set_telemetry(&telemetry);
  sys.set_profiler(&profiler);
  for (int r = 0; r < 20; ++r) sys.update();
  const std::string trace = obs::to_chrome_trace(profiler);
  // Per-worker spans (dispatch / work / barrier_wait) on named lanes.
  EXPECT_NE(trace.find("\"barrier_wait\""), std::string::npos);
  EXPECT_NE(trace.find("\"worker 0\""), std::string::npos);
  // Counter ("C") events for the imbalance and utilization tracks.
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace.find("\"imbalance_route\""), std::string::npos);
  EXPECT_NE(trace.find("\"parallel_work_fraction\""), std::string::npos);
}

}  // namespace
}  // namespace cellflow
