// Tests for the multi-flow extension (§V future work): per-flow routing,
// flow-pure admission, safety, fairness between flows, progress of
// crossing flows, and the documented head-on deadlock regime.
#include "multiflow/mf_system.hpp"

#include <gtest/gtest.h>

#include "multiflow/mf_predicates.hpp"
#include "util/check.hpp"

namespace cellflow {
namespace {

const Params kP(0.2, 0.1, 0.1);  // d = 0.3

// Two flows crossing on an open 7×7 grid: flow 0 west→east along row 3,
// flow 1 south→north along column 3; both pass the center.
MfSystemConfig crossing_config() {
  MfSystemConfig cfg;
  cfg.side = 7;
  cfg.params = kP;
  cfg.flows = {FlowSpec{CellId{6, 3}, {CellId{0, 3}}},
               FlowSpec{CellId{3, 6}, {CellId{3, 0}}}};
  return cfg;
}

MfSystem make(MfSystemConfig cfg, std::uint64_t seed = 1) {
  return MfSystem(std::move(cfg), make_choose_policy("random", seed), seed);
}

TEST(MfSystem, ConfigValidation) {
  MfSystemConfig empty;
  empty.flows = {};
  EXPECT_THROW(make(empty), ContractViolation);

  MfSystemConfig dup = crossing_config();
  dup.flows[1].target = dup.flows[0].target;
  EXPECT_THROW(make(dup), ContractViolation);

  MfSystemConfig self_target = crossing_config();
  self_target.flows[0].sources = {self_target.flows[0].target};
  EXPECT_THROW(make(self_target), ContractViolation);

  MfSystemConfig outside = crossing_config();
  outside.flows[0].target = CellId{9, 9};
  EXPECT_THROW(make(outside), ContractViolation);
}

TEST(MfSystem, PerFlowRoutingConvergesToPerFlowBfs) {
  MfSystem sys = make(crossing_config());
  for (int k = 0; k < 20; ++k) sys.update();
  for (FlowId f = 0; f < 2; ++f) {
    const auto rho = sys.reference_distances(f);
    for (const CellId id : sys.grid().all_cells()) {
      EXPECT_EQ(sys.cell(id).dist[f], rho[sys.grid().index_of(id)])
          << "flow " << f << " at " << to_string(id);
    }
  }
}

TEST(MfSystem, FlowsRouteToTheirOwnTargets) {
  MfSystem sys = make(crossing_config());
  for (int k = 0; k < 20; ++k) sys.update();
  // At the crossing cell the two flows' next pointers diverge.
  const MfCellState& center = sys.cell(CellId{3, 3});
  ASSERT_TRUE(center.next[0].has_value());
  ASSERT_TRUE(center.next[1].has_value());
  EXPECT_EQ(*center.next[0], (CellId{4, 3}));  // east toward ⟨6,3⟩
  EXPECT_EQ(*center.next[1], (CellId{3, 4}));  // north toward ⟨3,6⟩
}

TEST(MfSystem, BothCrossingFlowsDeliver) {
  MfSystem sys = make(crossing_config());
  for (int k = 0; k < 3000; ++k) sys.update();
  EXPECT_GT(sys.arrivals(0), 20u);
  EXPECT_GT(sys.arrivals(1), 20u);
  EXPECT_EQ(sys.total_arrivals(), sys.arrivals(0) + sys.arrivals(1));
}

TEST(MfSystem, AllOraclesHoldThroughCrossingTraffic) {
  MfSystem sys = make(crossing_config());
  for (int k = 0; k < 1500; ++k) {
    sys.update();
    const auto vs = check_mf_all(sys);
    ASSERT_TRUE(vs.empty()) << to_string(vs.front()) << " at round " << k;
  }
}

TEST(MfSystem, ThreeAcyclicFlowsAllDeliver) {
  // Three flows whose wait-for relation is acyclic: flow 0 (row 3, W→E)
  // waits only on flow 1; flow 1 (column 3, S→N) waits only on flow 2's
  // transit past its target; flow 2 (row 6, E→W) waits on nobody —
  // flow-1 entities reaching ⟨3,6⟩ are *consumed*, never parked. An
  // acyclic wait-for graph means every flow stays live.
  MfSystemConfig cfg;
  cfg.side = 7;
  cfg.params = kP;
  cfg.flows = {FlowSpec{CellId{6, 3}, {CellId{0, 3}}},
               FlowSpec{CellId{3, 6}, {CellId{3, 0}}},
               FlowSpec{CellId{0, 6}, {CellId{6, 6}}}};
  MfSystem sys = make(std::move(cfg), 7);
  for (int k = 0; k < 2500; ++k) {
    sys.update();
    ASSERT_FALSE(check_mf_purity(sys).has_value()) << "round " << k;
    ASSERT_FALSE(check_mf_safe(sys).has_value()) << "round " << k;
  }
  EXPECT_GT(sys.arrivals(0), 0u);
  EXPECT_GT(sys.arrivals(1), 0u);
  EXPECT_GT(sys.arrivals(2), 0u);
}

TEST(MfSystem, DocumentedThreeFlowGridlockRegime) {
  // The second documented limitation (alongside the head-on corridor):
  // three flows arranged so their wait-for relation is CYCLIC — flow 0's
  // row-3 stream waits on flow 1 at ⟨3,3⟩, flow 1's column waits on
  // flow 2 parked across row 6, and flow 2's path wraps around through
  // flow 0's source cell. Shortest-path routing with id tie-breaks walks
  // straight into the cycle and the system gridlocks — *safely*:
  // spacing and purity hold forever, throughput freezes. Deadlock-free
  // multi-commodity routing is exactly the open problem the paper's §V
  // points at.
  MfSystemConfig cfg;
  cfg.side = 7;
  cfg.params = kP;
  cfg.flows = {FlowSpec{CellId{6, 3}, {CellId{0, 3}}},
               FlowSpec{CellId{3, 6}, {CellId{3, 0}}},
               FlowSpec{CellId{0, 0}, {CellId{6, 6}}}};
  MfSystem sys = make(std::move(cfg), 7);
  for (int k = 0; k < 1200; ++k) {
    sys.update();
    ASSERT_FALSE(check_mf_purity(sys).has_value()) << "round " << k;
    ASSERT_FALSE(check_mf_safe(sys).has_value()) << "round " << k;
  }
  const std::uint64_t frozen = sys.total_arrivals();
  const std::size_t pop = sys.entity_count();
  for (int k = 0; k < 400; ++k) sys.update();
  EXPECT_EQ(sys.total_arrivals(), frozen);
  EXPECT_EQ(sys.entity_count(), pop);
  EXPECT_GT(pop, 0u);
}

TEST(MfSystem, TargetsOfOtherFlowsAreTraversable) {
  // Flow 1's route passes straight through flow 0's target cell.
  MfSystemConfig cfg;
  cfg.side = 5;
  cfg.params = kP;
  // Flow 0 target at the center of column 2; flow 1 runs up column 2.
  cfg.flows = {FlowSpec{CellId{2, 2}, {CellId{0, 2}}},
               FlowSpec{CellId{2, 4}, {CellId{2, 0}}}};
  MfSystem sys = make(std::move(cfg), 3);
  // Carve column 2 for flow 1 by failing everything except column 2 and
  // row 2 — keep it open; easier: run on the open grid and check flow 1
  // delivers (its shortest path is through ⟨2,2⟩).
  for (int k = 0; k < 2000; ++k) sys.update();
  EXPECT_GT(sys.arrivals(1), 10u);
  // And flow 0's own entities are consumed at ⟨2,2⟩, not stuck.
  EXPECT_GT(sys.arrivals(0), 10u);
}

TEST(MfSystem, SeedEntityEnforcesPurity) {
  MfSystem sys = make(crossing_config());
  sys.seed_entity(CellId{2, 2}, 0, Vec2{2.5, 2.5});
  EXPECT_THROW((void)sys.seed_entity(CellId{2, 2}, 1, Vec2{2.5, 2.85}),
               ContractViolation);
  EXPECT_NO_THROW((void)sys.seed_entity(CellId{2, 2}, 0, Vec2{2.5, 2.85}));
}

TEST(MfSystem, SeedEntityEnforcesGapAndBounds) {
  MfSystem sys = make(crossing_config());
  sys.seed_entity(CellId{2, 2}, 0, Vec2{2.5, 2.5});
  EXPECT_THROW((void)sys.seed_entity(CellId{2, 2}, 0, Vec2{2.6, 2.6}),
               ContractViolation);
  EXPECT_THROW((void)sys.seed_entity(CellId{2, 2}, 0, Vec2{2.05, 2.5}),
               ContractViolation);
}

TEST(MfSystem, FailAndRecoverPerFlowRouting) {
  MfSystem sys = make(crossing_config());
  for (int k = 0; k < 20; ++k) sys.update();
  sys.fail(CellId{3, 3});
  for (int k = 0; k < 30; ++k) sys.update();
  // Both flows route around the failed crossing.
  for (FlowId f = 0; f < 2; ++f) {
    const auto rho = sys.reference_distances(f);
    for (const CellId id : sys.grid().all_cells()) {
      if (rho[sys.grid().index_of(id)].is_finite()) {
        EXPECT_EQ(sys.cell(id).dist[f], rho[sys.grid().index_of(id)]);
      }
    }
  }
  sys.recover(CellId{3, 3});
  for (int k = 0; k < 30; ++k) sys.update();
  EXPECT_EQ(sys.cell(CellId{3, 3}).dist[0],
            sys.reference_distances(0)[sys.grid().index_of(CellId{3, 3})]);
}

TEST(MfSystem, SingleFlowMatchesBaseProtocolBehavior) {
  // With one flow the extension must behave like the base System:
  // entities stream from source to target with safety intact.
  MfSystemConfig cfg;
  cfg.side = 6;
  cfg.params = kP;
  cfg.flows = {FlowSpec{CellId{1, 5}, {CellId{1, 0}}}};
  MfSystem sys = make(std::move(cfg), 5);
  for (int k = 0; k < 1200; ++k) {
    sys.update();
    ASSERT_FALSE(check_mf_safe(sys).has_value());
  }
  EXPECT_GT(sys.arrivals(0), 30u);
}

TEST(MfSystem, DocumentedHeadOnDeadlockRegime) {
  // The regime that makes the generalization future work in the paper:
  // two flows facing each other in a single-lane corridor. Once entities
  // of both flows are in the corridor cells, flow-pure admission means
  // neither side can ever pass the other: throughput stalls, but safety
  // still holds (the extension degrades gracefully, it does not crash).
  MfSystemConfig cfg;
  cfg.side = 5;
  cfg.params = kP;
  cfg.flows = {FlowSpec{CellId{4, 0}, {CellId{0, 0}}},   // eastbound
               FlowSpec{CellId{0, 0}, {CellId{4, 0}}}};  // westbound
  MfSystem sys = make(std::move(cfg), 11);
  // Wall the corridor: only row 0 alive.
  for (const CellId id : sys.grid().all_cells())
    if (id.j != 0) sys.fail(id);

  for (int k = 0; k < 2000; ++k) {
    sys.update();
    ASSERT_FALSE(check_mf_safe(sys).has_value());
    ASSERT_FALSE(check_mf_purity(sys).has_value());
  }
  // Entities are parked in the corridor; deliveries stopped long ago.
  const std::uint64_t at_2000 = sys.total_arrivals();
  for (int k = 0; k < 500; ++k) sys.update();
  EXPECT_EQ(sys.total_arrivals(), at_2000);  // deadlocked, safely
  EXPECT_GT(sys.entity_count(), 0u);
}

TEST(MfSystem, InjectionRespectsPurityAtSharedSourceCell) {
  // Two flows with the SAME source cell: injections must never mix flows
  // in that cell.
  MfSystemConfig cfg;
  cfg.side = 5;
  cfg.params = kP;
  cfg.flows = {FlowSpec{CellId{4, 4}, {CellId{0, 0}}},
               FlowSpec{CellId{4, 0}, {CellId{0, 0}}}};
  MfSystem sys = make(std::move(cfg), 13);
  for (int k = 0; k < 1000; ++k) {
    sys.update();
    ASSERT_FALSE(check_mf_purity(sys).has_value()) << "round " << k;
  }
  // Both flows still get serviced over time (the empty-cell windows let
  // either flow claim the source).
  EXPECT_GT(sys.arrivals(0), 0u);
  EXPECT_GT(sys.arrivals(1), 0u);
}

}  // namespace
}  // namespace cellflow
