// Tests for the token-choice policies (the `choose` of Figure 5).
#include "core/choose.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"

namespace cellflow {
namespace {

const CellId kSelf{1, 1};
const std::vector<CellId> kThree = {{0, 1}, {1, 0}, {2, 1}};

TEST(RoundRobin, FirstAcquisitionTakesSmallest) {
  RoundRobinChoose rr;
  EXPECT_EQ(rr.choose(kSelf, kThree, std::nullopt), (CellId{0, 1}));
}

TEST(RoundRobin, RotatesCyclically) {
  RoundRobinChoose rr;
  EXPECT_EQ(rr.choose(kSelf, kThree, CellId{0, 1}), (CellId{1, 0}));
  EXPECT_EQ(rr.choose(kSelf, kThree, CellId{1, 0}), (CellId{2, 1}));
  EXPECT_EQ(rr.choose(kSelf, kThree, CellId{2, 1}), (CellId{0, 1}));  // wrap
}

TEST(RoundRobin, PreviousNotInCandidatesStillAdvances) {
  RoundRobinChoose rr;
  // Previous ⟨0,2⟩ sorts between ⟨0,1⟩ and ⟨1,0⟩.
  EXPECT_EQ(rr.choose(kSelf, kThree, CellId{0, 2}), (CellId{1, 0}));
  // Previous above everything wraps to the front.
  EXPECT_EQ(rr.choose(kSelf, kThree, CellId{9, 9}), (CellId{0, 1}));
}

TEST(RoundRobin, VisitsEveryCandidateOncePerCycle) {
  RoundRobinChoose rr;
  std::map<CellId, int> visits;
  OptCellId prev;
  for (int k = 0; k < 9; ++k) {
    const CellId c = rr.choose(kSelf, kThree, prev);
    ++visits[c];
    prev = c;
  }
  for (const CellId c : kThree) EXPECT_EQ(visits[c], 3);
}

TEST(RoundRobin, EmptyCandidatesViolatesContract) {
  RoundRobinChoose rr;
  EXPECT_THROW((void)rr.choose(kSelf, {}, std::nullopt), ContractViolation);
}

TEST(RoundRobin, UnsortedCandidatesViolateContract) {
  RoundRobinChoose rr;
  const std::vector<CellId> bad = {{2, 1}, {0, 1}};
  EXPECT_THROW((void)rr.choose(kSelf, bad, std::nullopt), ContractViolation);
}

TEST(RandomChoose, StaysInCandidateSet) {
  RandomChoose rc(123);
  for (int k = 0; k < 200; ++k) {
    const CellId c = rc.choose(kSelf, kThree, std::nullopt);
    EXPECT_TRUE(c == kThree[0] || c == kThree[1] || c == kThree[2]);
  }
}

TEST(RandomChoose, DeterministicUnderSeed) {
  RandomChoose a(7);
  RandomChoose b(7);
  for (int k = 0; k < 100; ++k)
    EXPECT_EQ(a.choose(kSelf, kThree, std::nullopt),
              b.choose(kSelf, kThree, std::nullopt));
}

TEST(RandomChoose, EventuallyPicksEveryone) {
  RandomChoose rc(99);
  std::map<CellId, int> visits;
  for (int k = 0; k < 300; ++k) ++visits[rc.choose(kSelf, kThree, std::nullopt)];
  for (const CellId c : kThree) EXPECT_GT(visits[c], 50);
}

TEST(LowestId, AlwaysSmallest) {
  LowestIdChoose lc;
  for (int k = 0; k < 5; ++k)
    EXPECT_EQ(lc.choose(kSelf, kThree, CellId{2, 1}), (CellId{0, 1}));
}

TEST(Factory, BuildsEachPolicy) {
  EXPECT_NE(make_choose_policy("round-robin", 0), nullptr);
  EXPECT_NE(make_choose_policy("random", 1), nullptr);
  EXPECT_NE(make_choose_policy("lowest-id", 2), nullptr);
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW((void)make_choose_policy("fifo", 0), std::runtime_error);
}

}  // namespace
}  // namespace cellflow
