// Tests for the message-passing realization (paper §II-B). The headline
// property is EXACT equivalence with the shared-variable System under
// identical configurations and failure schedules — the evidence that the
// §II automaton faithfully models the distributed implementation.
#include "msg/msg_system.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/system.hpp"
#include "util/check.hpp"

namespace cellflow {
namespace {

const Params kP(0.25, 0.05, 0.1);

MsgSystemConfig msg_config(int side) {
  MsgSystemConfig cfg;
  cfg.side = side;
  cfg.params = kP;
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, side - 1};
  return cfg;
}

SystemConfig shared_config(int side) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = kP;
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, side - 1};
  return cfg;
}

// Sorted (id, position) snapshot of one cell's members.
std::vector<std::pair<EntityId, Vec2>> snapshot(const CellState& c) {
  std::vector<std::pair<EntityId, Vec2>> out;
  for (const Entity& e : c.members) out.emplace_back(e.id, e.center);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void expect_equal_states(const System& a, const MessageSystem& b,
                         std::uint64_t round) {
  ASSERT_EQ(a.total_arrivals(), b.total_arrivals()) << "round " << round;
  ASSERT_EQ(a.total_injected(), b.total_injected()) << "round " << round;
  for (const CellId id : a.grid().all_cells()) {
    const CellState& ca = a.cell(id);
    const CellState& cb = b.cell(id);
    ASSERT_EQ(ca.failed, cb.failed) << to_string(id) << " round " << round;
    ASSERT_EQ(ca.dist, cb.dist) << to_string(id) << " round " << round;
    ASSERT_EQ(ca.next, cb.next) << to_string(id) << " round " << round;
    ASSERT_EQ(ca.signal, cb.signal) << to_string(id) << " round " << round;
    ASSERT_EQ(ca.token, cb.token) << to_string(id) << " round " << round;
    ASSERT_EQ(snapshot(ca), snapshot(cb))
        << to_string(id) << " round " << round;
  }
}

TEST(MessageSystem, ExactlyEquivalentToSharedVariableSystem) {
  System shared{shared_config(6)};
  MessageSystem msg{msg_config(6)};
  for (std::uint64_t k = 0; k < 800; ++k) {
    shared.update();
    msg.update();
    expect_equal_states(shared, msg, k);
  }
  EXPECT_GT(shared.total_arrivals(), 0u);
}

TEST(MessageSystem, EquivalentUnderScriptedFailures) {
  System shared{shared_config(6)};
  MessageSystem msg{msg_config(6)};
  for (std::uint64_t k = 0; k < 600; ++k) {
    if (k == 50) {
      shared.fail(CellId{1, 3});
      msg.fail(CellId{1, 3});
    }
    if (k == 120) {
      shared.fail(CellId{2, 3});
      msg.fail(CellId{2, 3});
    }
    if (k == 300) {
      shared.recover(CellId{1, 3});
      msg.recover(CellId{1, 3});
    }
    shared.update();
    msg.update();
    expect_equal_states(shared, msg, k);
  }
}

TEST(MessageSystem, EquivalentWithFailingTarget) {
  System shared{shared_config(5)};
  MessageSystem msg{msg_config(5)};
  for (std::uint64_t k = 0; k < 400; ++k) {
    if (k == 60) {
      shared.fail(shared.target());
      msg.fail(msg.target());
    }
    if (k == 200) {
      shared.recover(shared.target());
      msg.recover(msg.target());
    }
    shared.update();
    msg.update();
    expect_equal_states(shared, msg, k);
  }
}

// Three-way checks: shared-variable serial ≡ shared-variable parallel
// (4-thread ParallelPolicy) ≡ message-passing, on the same executions.
// The serial↔parallel leg is bit-exact (members in insertion order); the
// shared↔message leg uses the established sorted-snapshot equality.
void expect_exact_equal(const System& a, const System& b,
                        std::uint64_t round) {
  ASSERT_EQ(a.total_arrivals(), b.total_arrivals()) << "round " << round;
  ASSERT_EQ(a.total_injected(), b.total_injected()) << "round " << round;
  for (const CellId id : a.grid().all_cells()) {
    const CellState& ca = a.cell(id);
    const CellState& cb = b.cell(id);
    ASSERT_EQ(ca.failed, cb.failed) << to_string(id) << " round " << round;
    ASSERT_EQ(ca.dist, cb.dist) << to_string(id) << " round " << round;
    ASSERT_EQ(ca.next, cb.next) << to_string(id) << " round " << round;
    ASSERT_EQ(ca.signal, cb.signal) << to_string(id) << " round " << round;
    ASSERT_EQ(ca.token, cb.token) << to_string(id) << " round " << round;
    ASSERT_EQ(ca.members, cb.members) << to_string(id) << " round " << round;
  }
}

TEST(ThreeWay, MultiSourceAgreement) {
  SystemConfig sc = shared_config(6);
  sc.sources = {CellId{1, 0}, CellId{4, 0}};
  sc.target = CellId{2, 5};
  MsgSystemConfig mc = msg_config(6);
  mc.sources = sc.sources;
  mc.target = sc.target;

  System serial{sc};
  serial.set_parallel_policy(ParallelPolicy::serial());
  System par{sc};
  par.set_parallel_policy(ParallelPolicy::parallel(4));
  MessageSystem msg{mc};

  for (std::uint64_t k = 0; k < 500; ++k) {
    serial.update();
    par.update();
    msg.update();
    expect_exact_equal(serial, par, k);
    expect_equal_states(serial, msg, k);
  }
  EXPECT_GT(serial.total_arrivals(), 0u);
}

TEST(ThreeWay, AgreementUnderScriptedFailures) {
  System serial{shared_config(6)};
  serial.set_parallel_policy(ParallelPolicy::serial());
  System par{shared_config(6)};
  par.set_parallel_policy(ParallelPolicy::parallel(4));
  MessageSystem msg{msg_config(6)};

  const auto fail_all = [&](CellId id) {
    serial.fail(id);
    par.fail(id);
    msg.fail(id);
  };
  for (std::uint64_t k = 0; k < 400; ++k) {
    if (k == 50) fail_all(CellId{1, 3});
    if (k == 120) fail_all(CellId{2, 3});
    serial.update();
    par.update();
    msg.update();
    expect_exact_equal(serial, par, k);
    expect_equal_states(serial, msg, k);
  }
}

TEST(ThreeWay, AgreementThroughFailureAndRecovery) {
  System serial{shared_config(6)};
  serial.set_parallel_policy(ParallelPolicy::serial());
  System par{shared_config(6)};
  par.set_parallel_policy(ParallelPolicy::parallel(4));
  MessageSystem msg{msg_config(6)};

  for (std::uint64_t k = 0; k < 400; ++k) {
    if (k == 40) {
      serial.fail(CellId{1, 3});
      par.fail(CellId{1, 3});
      msg.fail(CellId{1, 3});
    }
    if (k == 200) {
      serial.recover(CellId{1, 3});
      par.recover(CellId{1, 3});
      msg.recover(CellId{1, 3});
    }
    serial.update();
    par.update();
    msg.update();
    expect_exact_equal(serial, par, k);
    expect_equal_states(serial, msg, k);
  }
  // Flow resumes through the recovered cell.
  EXPECT_GT(serial.total_arrivals(), 0u);
}

TEST(MessageSystem, SilentNeighborReadsAsInfiniteDistance) {
  // Footnote 1 made executable: crash a cell and verify its neighbors'
  // dist rises as if the cell reported ∞ — without any failure detector.
  MessageSystem msg{msg_config(5)};
  for (int k = 0; k < 12; ++k) msg.update();
  const Dist before = msg.cell(CellId{1, 2}).dist;
  EXPECT_TRUE(before.is_finite());
  // Wall the routing column so the crash forces a detour.
  msg.fail(CellId{1, 3});
  msg.fail(CellId{0, 3});
  msg.fail(CellId{2, 3});
  msg.fail(CellId{3, 3});
  for (int k = 0; k < 80; ++k) msg.update();
  // Column cut: everything below row 3 is disconnected, dists grow
  // unboundedly past any previous finite value.
  const Dist after = msg.cell(CellId{1, 2}).dist;
  EXPECT_TRUE(after.is_infinite() || after > before);
}

TEST(MessageSystem, MessageComplexityPerRound) {
  // Per round: 3 broadcast exchanges over the directed neighbor pairs
  // (4·N·(N−1) directed edges on an N×N grid) from live cells, plus the
  // data plane: at most one TransferBatch offer per (granting cell,
  // round) — each cell grants at most once per round — and one
  // TransferAck per delivered batch. With all cells alive:
  //   ≥ 3 · 4·N·(N−1) and ≤ that + 2·N².
  MessageSystem msg{msg_config(6)};
  for (int k = 0; k < 50; ++k) {
    msg.update();
    const std::uint64_t edges = 4ull * 6 * 5;
    EXPECT_GE(msg.last_round_messages(), 3 * edges);
    EXPECT_LE(msg.last_round_messages(), 3 * edges + 2ull * 6 * 6);
  }
  // The reliable data plane never retransmits: every batch is acked in
  // the round it was offered, so sent transfer batches == sent acks.
  EXPECT_EQ(msg.network().sent_count(PayloadType::kTransfer),
            msg.network().sent_count(PayloadType::kAck));
  EXPECT_GT(msg.network().sent_count(PayloadType::kTransfer), 0u);
}

TEST(MessageSystem, CrashedProcessesSendNothing) {
  MessageSystem msg{msg_config(4)};
  msg.update();
  const std::uint64_t live_round = msg.last_round_messages();
  // Crash half the grid; message volume must drop accordingly.
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 2; ++j) msg.fail(CellId{i, j});
  msg.update();
  EXPECT_LT(msg.last_round_messages(), live_round);
}

TEST(MessageSystem, ConfigValidation) {
  MsgSystemConfig bad = msg_config(4);
  bad.target = CellId{9, 9};
  EXPECT_THROW(MessageSystem{bad}, ContractViolation);
  MsgSystemConfig bad2 = msg_config(4);
  bad2.sources = {bad2.target};
  EXPECT_THROW(MessageSystem{bad2}, ContractViolation);
}

}  // namespace
}  // namespace cellflow
