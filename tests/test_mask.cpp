// Tests for CellMask and the BFS reference oracle (path distance ρ and the
// target-connected set TC from §III-B).
#include "grid/mask.hpp"

#include <gtest/gtest.h>

#include "grid/path.hpp"

namespace cellflow {
namespace {

TEST(CellMask, DefaultAllFalse) {
  const Grid g(4);
  const CellMask m(g);
  EXPECT_EQ(m.count(), 0u);
  EXPECT_FALSE(m.test(CellId{0, 0}));
}

TEST(CellMask, AllAndOf) {
  const Grid g(3);
  EXPECT_EQ(CellMask::all(g).count(), 9u);
  const CellMask m = CellMask::of(g, {{0, 0}, {2, 2}});
  EXPECT_EQ(m.count(), 2u);
  EXPECT_TRUE(m.test(CellId{0, 0}));
  EXPECT_TRUE(m.test(CellId{2, 2}));
  EXPECT_FALSE(m.test(CellId{1, 1}));
}

TEST(CellMask, SetAndClear) {
  const Grid g(3);
  CellMask m(g);
  m.set(CellId{1, 1});
  EXPECT_TRUE(m.test(CellId{1, 1}));
  m.set(CellId{1, 1}, false);
  EXPECT_FALSE(m.test(CellId{1, 1}));
}

TEST(CellMask, ComplementAndIntersection) {
  const Grid g(2);
  const CellMask m = CellMask::of(g, {{0, 0}, {1, 1}});
  const CellMask inv = ~m;
  EXPECT_EQ(inv.count(), 2u);
  EXPECT_TRUE(inv.test(CellId{1, 0}));
  EXPECT_EQ((m & inv).count(), 0u);
  EXPECT_EQ((m & CellMask::all(g)).count(), 2u);
}

TEST(CellMask, SetCellsRowMajor) {
  const Grid g(3);
  const CellMask m = CellMask::of(g, {{2, 0}, {0, 1}});
  const auto cells = m.set_cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], (CellId{2, 0}));
  EXPECT_EQ(cells[1], (CellId{0, 1}));
}

TEST(PathDistances, AllAliveEqualsManhattan) {
  const Grid g(5);
  const CellId tid{2, 3};
  const auto rho = path_distances(g, CellMask::all(g), tid);
  for (const CellId id : g.all_cells()) {
    ASSERT_TRUE(rho[g.index_of(id)].is_finite());
    EXPECT_EQ(rho[g.index_of(id)].hops(),
              static_cast<std::uint64_t>(g.manhattan(id, tid)));
  }
}

TEST(PathDistances, FailedCellsAreInfinite) {
  const Grid g(3);
  CellMask alive = CellMask::all(g);
  alive.set(CellId{1, 1}, false);
  const auto rho = path_distances(g, alive, CellId{0, 0});
  EXPECT_TRUE(rho[g.index_of(CellId{1, 1})].is_infinite());
  // Detour around the failed center: ⟨2,2⟩ still reachable in 4 hops.
  EXPECT_EQ(rho[g.index_of(CellId{2, 2})], Dist::finite(4));
}

TEST(PathDistances, WallDisconnectsRegion) {
  const Grid g(4);
  CellMask alive = CellMask::all(g);
  // Vertical wall at i = 2 disconnects i = 3 column from target at ⟨0,0⟩.
  for (int j = 0; j < 4; ++j) alive.set(CellId{2, j}, false);
  const auto rho = path_distances(g, alive, CellId{0, 0});
  for (int j = 0; j < 4; ++j) {
    EXPECT_TRUE(rho[g.index_of(CellId{3, j})].is_infinite());
    EXPECT_TRUE(rho[g.index_of(CellId{2, j})].is_infinite());
  }
  EXPECT_TRUE(rho[g.index_of(CellId{1, 2})].is_finite());
}

TEST(PathDistances, FailedTargetMakesEverythingInfinite) {
  const Grid g(3);
  CellMask alive = CellMask::all(g);
  alive.set(CellId{1, 1}, false);
  const auto rho = path_distances(g, alive, CellId{1, 1});
  for (const CellId id : g.all_cells())
    EXPECT_TRUE(rho[g.index_of(id)].is_infinite());
}

TEST(PathDistances, DetourCostsExtra) {
  const Grid g(5);
  CellMask alive = CellMask::all(g);
  // U-shaped wall forcing a detour from ⟨0,2⟩ to target ⟨4,2⟩.
  alive.set(CellId{2, 1}, false);
  alive.set(CellId{2, 2}, false);
  alive.set(CellId{2, 3}, false);
  const auto rho = path_distances(g, alive, CellId{4, 2});
  // Straight-line distance is 4; the wall forces a dip to j=0 (or j=4)
  // and back: 1 + 2 + 2 + 2 + 1 = 8 hops.
  EXPECT_EQ(rho[g.index_of(CellId{0, 2})], Dist::finite(8));
}

TEST(TargetConnected, CarvedPathOnlyPathIsConnected) {
  const Grid g(8);
  const Path p = make_turning_path(g, CellId{0, 0}, Direction::kNorth,
                                   Direction::kEast, 8, 3);
  const CellMask alive = CellMask::of(g, p.cells());
  const CellMask tc = target_connected(g, alive, p.target());
  EXPECT_EQ(tc.count(), p.length());
  for (const CellId c : p.cells()) EXPECT_TRUE(tc.test(c));
}

TEST(TargetConnected, IslandExcluded) {
  const Grid g(4);
  CellMask alive = CellMask::all(g);
  for (int j = 0; j < 4; ++j) alive.set(CellId{2, j}, false);
  const CellMask tc = target_connected(g, alive, CellId{0, 0});
  EXPECT_FALSE(tc.test(CellId{3, 0}));
  EXPECT_TRUE(tc.test(CellId{1, 3}));
  EXPECT_EQ(tc.count(), 8u);  // two alive columns i=0,1
}

}  // namespace
}  // namespace cellflow
