// Unit tests for CellId / EntityId — in particular the lexicographic
// ordering that Route's tie-break (Figure 4) depends on.
#include "util/ids.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <unordered_set>
#include <vector>

namespace cellflow {
namespace {

TEST(CellId, LexicographicOrderingIFirst) {
  EXPECT_LT((CellId{0, 5}), (CellId{1, 0}));
  EXPECT_LT((CellId{1, 0}), (CellId{1, 1}));
  EXPECT_EQ((CellId{2, 3}), (CellId{2, 3}));
  EXPECT_NE((CellId{2, 3}), (CellId{3, 2}));
}

TEST(CellId, SortProducesRouteTieBreakOrder) {
  // Figure 4's argmin ties are broken by id: ⟨i−1,j⟩ < ⟨i,j−1⟩ < ⟨i,j+1⟩
  // < ⟨i+1,j⟩ for interior cells.
  std::vector<CellId> nbrs = {{2, 1}, {0, 1}, {1, 0}, {1, 2}};
  std::sort(nbrs.begin(), nbrs.end());
  const std::vector<CellId> expect = {{0, 1}, {1, 0}, {1, 2}, {2, 1}};
  EXPECT_EQ(nbrs, expect);
}

TEST(CellId, ToStringUsesAngleForm) {
  EXPECT_EQ(to_string(CellId{2, 7}), "<2,7>");
  EXPECT_EQ(to_string(CellId{-1, 0}), "<-1,0>");
}

TEST(CellId, OptionalToStringShowsBottom) {
  EXPECT_EQ(to_string(OptCellId{}), "_|_");
  EXPECT_EQ(to_string(OptCellId{CellId{1, 2}}), "<1,2>");
}

TEST(CellId, StreamOperator) {
  std::ostringstream os;
  os << CellId{4, 2};
  EXPECT_EQ(os.str(), "<4,2>");
}

TEST(CellId, HashDistinguishesTransposes) {
  const std::hash<CellId> h;
  EXPECT_NE(h(CellId{1, 2}), h(CellId{2, 1}));
}

TEST(CellId, UsableInUnorderedSet) {
  std::unordered_set<CellId> s;
  for (int i = 0; i < 10; ++i)
    for (int j = 0; j < 10; ++j) s.insert(CellId{i, j});
  EXPECT_EQ(s.size(), 100u);
  EXPECT_TRUE(s.contains(CellId{3, 7}));
  EXPECT_FALSE(s.contains(CellId{10, 0}));
}

TEST(EntityId, OrderingAndEquality) {
  EXPECT_LT(EntityId{1}, EntityId{2});
  EXPECT_EQ(EntityId{7}, EntityId{7});
  EXPECT_NE(EntityId{7}, EntityId{8});
}

TEST(EntityId, ToStringUsesPPrefix) {
  EXPECT_EQ(to_string(EntityId{42}), "p42");
}

TEST(EntityId, UsableInUnorderedSet) {
  std::unordered_set<EntityId> s;
  for (std::uint64_t k = 0; k < 100; ++k) s.insert(EntityId{k});
  EXPECT_EQ(s.size(), 100u);
}

}  // namespace
}  // namespace cellflow
