// Sidecar model tests: metric classification, both schema generations,
// strict v2 validation, the noise-aware regression gate (one-sided per
// metric direction, dispersion-widened thresholds, row matching by key
// columns), and the doctored-sidecar synthesizer the benchdiff.inject
// ctest fixture relies on. Everything here is pure string/JSON work —
// fully deterministic, no clocks.
#include "obs/sidecar.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

namespace cellflow {
namespace {

using obs::classify_metric;
using obs::CompareOptions;
using obs::CompareReport;
using obs::CompareRow;
using obs::compare_sidecars;
using obs::MetricDirection;
using obs::parse_sidecar;
using obs::scale_sidecar_metrics;
using obs::Sidecar;
using obs::validate_sidecar_schema;

/// A representative v2 document: key columns, a throughput column, a
/// duration column, its *_rd dispersion column, and an informational
/// percentage. Mirrors what bench_common.hpp emits.
std::string v2_doc(double rps, double work_ns, double cover_pct,
                   double rps_rd = 0.02, double top_rps = 1000.0) {
  const auto num = [](double v) { return std::to_string(v); };
  return std::string("{\"bench\":\"micro_demo\",\"sidecar_version\":2,") +
         "\"provenance\":{\"git_sha\":\"abc123\",\"build_type\":\"Release\"," +
         "\"compiler\":\"GNU 13\",\"threads\":0,\"hardware_threads\":4," +
         "\"repetitions\":3}," +
         "\"elapsed_seconds\":1.5,\"rounds\":100,\"rounds_per_sec\":" +
         num(top_rps) + "," +
         "\"series\":{\"header\":[\"side\",\"threads\",\"rounds_per_sec\"," +
         "\"rounds_per_sec_rd\",\"work_ns\",\"coverage_pct\"]," +
         "\"rows\":[[20,0," + num(rps) + "," + num(rps_rd) + "," +
         num(work_ns) + "," + num(cover_pct) + "]," +
         "[20,4," + num(rps * 0.5) + "," + num(rps_rd) + "," +
         num(work_ns * 2) + "," + num(cover_pct) + "]]}," +
         "\"dispersion\":{\"rounds_per_sec\":{\"n\":3,\"mean\":" + num(rps) +
         ",\"rel\":" + num(rps_rd) + "}}}";
}

const CompareRow* find_row(const CompareReport& r, const std::string& key,
                           const std::string& metric) {
  const auto it = std::find_if(
      r.rows.begin(), r.rows.end(), [&](const CompareRow& row) {
        return row.row_key == key && row.metric == metric;
      });
  return it == r.rows.end() ? nullptr : &*it;
}

TEST(Sidecar, ClassifyMetricBySuffix) {
  EXPECT_EQ(classify_metric("rounds_per_sec"),
            MetricDirection::kHigherBetter);
  EXPECT_EQ(classify_metric("work_ns"), MetricDirection::kLowerBetter);
  EXPECT_EQ(classify_metric("elapsed_seconds"),
            MetricDirection::kLowerBetter);
  EXPECT_EQ(classify_metric("rounds_per_sec_rd"),
            MetricDirection::kDispersion);
  EXPECT_EQ(classify_metric("coverage_pct"),
            MetricDirection::kInformational);
  EXPECT_EQ(classify_metric("speedup_vs_serial"),
            MetricDirection::kInformational);
  EXPECT_EQ(classify_metric("imbalance"), MetricDirection::kInformational);
  EXPECT_EQ(classify_metric("side"), MetricDirection::kKey);
  EXPECT_EQ(classify_metric("threads"), MetricDirection::kKey);
}

TEST(Sidecar, ParsesV1WithoutProvenance) {
  const Sidecar s = parse_sidecar(
      "{\"bench\":\"old\",\"elapsed_seconds\":2.0,"
      "\"series\":{\"header\":[\"x\",\"y_ns\"],\"rows\":[[1,10],[2,20]]}}");
  EXPECT_EQ(s.version, 1);
  EXPECT_EQ(s.bench, "old");
  EXPECT_EQ(s.provenance.git_sha, "");
  ASSERT_EQ(s.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(s.rows[1][1].as_number(), 20.0);
  EXPECT_TRUE(s.dispersion.empty());
}

TEST(Sidecar, ParsesV2ProvenanceAndDispersion) {
  const Sidecar s = parse_sidecar(v2_doc(100.0, 500.0, 97.0));
  EXPECT_EQ(s.version, 2);
  EXPECT_EQ(s.provenance.git_sha, "abc123");
  EXPECT_EQ(s.provenance.build_type, "Release");
  EXPECT_EQ(s.provenance.hardware_threads, 4);
  EXPECT_EQ(s.provenance.repetitions, 3);
  ASSERT_TRUE(s.rounds_per_sec.has_value());
  EXPECT_DOUBLE_EQ(*s.rounds_per_sec, 1000.0);
  ASSERT_EQ(s.dispersion.count("rounds_per_sec"), 1u);
  EXPECT_EQ(s.dispersion.at("rounds_per_sec").n, 3u);
}

TEST(Sidecar, StrictSchemaAcceptsV2RejectsV1AndRaggedRows) {
  EXPECT_NO_THROW(validate_sidecar_schema(v2_doc(100.0, 500.0, 97.0)));
  EXPECT_THROW(
      validate_sidecar_schema(
          "{\"bench\":\"old\",\"elapsed_seconds\":1.0,"
          "\"series\":{\"header\":[\"x\"],\"rows\":[[1]]}}"),
      std::runtime_error);
  // Provenance key missing.
  EXPECT_THROW(validate_sidecar_schema(
                   "{\"bench\":\"b\",\"sidecar_version\":2,"
                   "\"provenance\":{\"git_sha\":\"a\"},"
                   "\"elapsed_seconds\":1.0,"
                   "\"series\":{\"header\":[],\"rows\":[]}}"),
               std::runtime_error);
  // Ragged rows: 1 column declared, 2 present.
  const std::string ragged = std::string(
      "{\"bench\":\"b\",\"sidecar_version\":2,"
      "\"provenance\":{\"git_sha\":\"a\",\"build_type\":\"R\","
      "\"compiler\":\"G\",\"threads\":0,\"hardware_threads\":1,"
      "\"repetitions\":1},\"elapsed_seconds\":1.0,"
      "\"series\":{\"header\":[\"x\"],\"rows\":[[1,2]]}}");
  EXPECT_THROW(validate_sidecar_schema(ragged), std::runtime_error);
}

TEST(Sidecar, SelfComparisonIsClean) {
  const Sidecar s = parse_sidecar(v2_doc(100.0, 500.0, 97.0));
  const CompareReport r = compare_sidecars(s, s, CompareOptions{});
  EXPECT_TRUE(r.ok());
  for (const CompareRow& row : r.rows) {
    EXPECT_DOUBLE_EQ(row.rel_change, 0.0) << row.metric;
    EXPECT_FALSE(row.regression) << row.metric;
  }
}

TEST(Sidecar, GateIsOneSidedPerMetricDirection) {
  const Sidecar base = parse_sidecar(v2_doc(100.0, 500.0, 97.0));
  // Faster everywhere: throughput up, durations down — never a failure.
  const Sidecar faster = parse_sidecar(v2_doc(300.0, 100.0, 97.0));
  EXPECT_TRUE(compare_sidecars(base, faster, CompareOptions{}).ok());
  // The reverse direction at the same magnitude is a regression.
  const CompareReport slow =
      compare_sidecars(faster, base, CompareOptions{});
  EXPECT_FALSE(slow.ok());
  const CompareRow* rps = find_row(slow, "20/0", "rounds_per_sec");
  ASSERT_NE(rps, nullptr);
  EXPECT_TRUE(rps->gated);
  EXPECT_TRUE(rps->regression);
  const CompareRow* work = find_row(slow, "20/0", "work_ns");
  ASSERT_NE(work, nullptr);
  EXPECT_TRUE(work->regression);  // duration rose 5x
}

TEST(Sidecar, ChangesInsideTheMarginPass) {
  const Sidecar base = parse_sidecar(v2_doc(100.0, 500.0, 97.0));
  // 20% throughput drop, 20% duration rise: inside the default 35%.
  const Sidecar wobble = parse_sidecar(v2_doc(80.0, 600.0, 95.0));
  EXPECT_TRUE(compare_sidecars(base, wobble, CompareOptions{}).ok());
}

TEST(Sidecar, DispersionWidensTheThreshold) {
  // A 50% drop on a metric whose *_rd column says the best-of statistic
  // wobbles 20%: threshold = max(0.35, 4 * 0.2) = 0.8, so it passes...
  const Sidecar base = parse_sidecar(v2_doc(100.0, 500.0, 97.0, 0.2));
  const Sidecar half = parse_sidecar(v2_doc(50.0, 500.0, 97.0, 0.2));
  const CompareReport wide = compare_sidecars(base, half, CompareOptions{});
  const CompareRow* rps = find_row(wide, "20/0", "rounds_per_sec");
  ASSERT_NE(rps, nullptr);
  EXPECT_DOUBLE_EQ(rps->threshold, 0.8);
  EXPECT_FALSE(rps->regression);
  // ...while a tight-dispersion run fails the same 50% drop.
  const Sidecar tight_base = parse_sidecar(v2_doc(100.0, 500.0, 97.0, 0.01));
  const Sidecar tight_half = parse_sidecar(v2_doc(50.0, 500.0, 97.0, 0.01));
  EXPECT_FALSE(
      compare_sidecars(tight_base, tight_half, CompareOptions{}).ok());
}

TEST(Sidecar, InformationalColumnsAreNeverGated) {
  const Sidecar base = parse_sidecar(v2_doc(100.0, 500.0, 97.0));
  const Sidecar low_cover = parse_sidecar(v2_doc(100.0, 500.0, 10.0));
  const CompareReport r =
      compare_sidecars(base, low_cover, CompareOptions{});
  EXPECT_TRUE(r.ok());
  const CompareRow* cover = find_row(r, "20/0", "coverage_pct");
  ASSERT_NE(cover, nullptr);
  EXPECT_FALSE(cover->gated);
}

TEST(Sidecar, RowsOnlyInOneRunAreNotesNotFailures) {
  const Sidecar base = parse_sidecar(v2_doc(100.0, 500.0, 97.0));
  Sidecar fresh = base;
  fresh.rows.pop_back();  // drop the 4-thread row
  const CompareReport r = compare_sidecars(base, fresh, CompareOptions{});
  EXPECT_TRUE(r.ok());
  ASSERT_FALSE(r.notes.empty());
  EXPECT_NE(r.notes.back().find("20/4"), std::string::npos);
}

TEST(Sidecar, TopLevelRoundsPerSecIsGated) {
  const Sidecar base = parse_sidecar(
      v2_doc(100.0, 500.0, 97.0, 0.02, /*top_rps=*/1000.0));
  const Sidecar slow = parse_sidecar(
      v2_doc(100.0, 500.0, 97.0, 0.02, /*top_rps=*/400.0));
  const CompareReport r = compare_sidecars(base, slow, CompareOptions{});
  EXPECT_FALSE(r.ok());
  const CompareRow* top = find_row(r, "-", "rounds_per_sec");
  ASSERT_NE(top, nullptr);
  EXPECT_TRUE(top->regression);
}

TEST(Sidecar, ScaleSidecarSynthesizesACredibleRegression) {
  const std::string original = v2_doc(100.0, 500.0, 97.0);
  const std::string doctored = scale_sidecar_metrics(original, 0.5);
  const Sidecar base = parse_sidecar(original);
  const Sidecar bad = parse_sidecar(doctored);
  // Gated metrics moved in their "worse" direction...
  EXPECT_DOUBLE_EQ(bad.rows[0][2].as_number(), 50.0);    // rps halved
  EXPECT_DOUBLE_EQ(bad.rows[0][4].as_number(), 1000.0);  // ns doubled
  ASSERT_TRUE(bad.rounds_per_sec.has_value());
  EXPECT_DOUBLE_EQ(*bad.rounds_per_sec, 500.0);
  // ...keys, dispersion, and informational columns stayed put...
  EXPECT_DOUBLE_EQ(bad.rows[0][0].as_number(), 20.0);
  EXPECT_DOUBLE_EQ(bad.rows[0][3].as_number(), 0.02);
  EXPECT_DOUBLE_EQ(bad.rows[0][5].as_number(), 97.0);
  // ...the doctored document still satisfies the strict v2 schema, and
  // the gate flags it (this is exactly the benchdiff.inject fixture).
  EXPECT_NO_THROW(validate_sidecar_schema(doctored));
  EXPECT_FALSE(compare_sidecars(base, bad, CompareOptions{}).ok());
}

/// v2 document carrying the optional "memory" map (S2: process VmHWM +
/// store peak, the figures bench/macro_huge_grid stamps).
std::string v2_memory_doc(double vm_hwm, double store_peak) {
  const auto num = [](double v) { return std::to_string(v); };
  return std::string("{\"bench\":\"macro_demo\",\"sidecar_version\":2,") +
         "\"provenance\":{\"git_sha\":\"abc123\",\"build_type\":\"Release\"," +
         "\"compiler\":\"GNU 13\",\"threads\":0,\"hardware_threads\":4," +
         "\"repetitions\":1}," +
         "\"elapsed_seconds\":1.0," +
         "\"series\":{\"header\":[\"round\",\"store_bytes\"]," +
         "\"rows\":[[0,1000],[1,2000]]}," +
         "\"memory\":{\"vm_hwm_bytes\":" + num(vm_hwm) +
         ",\"store_peak_bytes\":" + num(store_peak) + "}}";
}

TEST(Sidecar, BytesMetricsGateLowerBetter) {
  EXPECT_EQ(classify_metric("store_peak_bytes"),
            MetricDirection::kLowerBetter);
  EXPECT_EQ(classify_metric("vm_hwm_bytes"), MetricDirection::kLowerBetter);
  EXPECT_EQ(classify_metric("snapshot_bytes"), MetricDirection::kLowerBetter);
}

TEST(Sidecar, ParsesAndValidatesMemoryMap) {
  const std::string doc = v2_memory_doc(50e6, 30e6);
  const Sidecar s = parse_sidecar(doc);
  ASSERT_EQ(s.memory.size(), 2u);
  EXPECT_DOUBLE_EQ(s.memory.at("vm_hwm_bytes"), 50e6);
  EXPECT_DOUBLE_EQ(s.memory.at("store_peak_bytes"), 30e6);
  EXPECT_NO_THROW(validate_sidecar_schema(doc));

  // Malformed memory blocks are typed schema failures.
  EXPECT_THROW(parse_sidecar("{\"bench\":\"b\",\"elapsed_seconds\":1.0,"
                             "\"series\":{\"header\":[],\"rows\":[]},"
                             "\"memory\":[1,2]}"),
               std::runtime_error);
  EXPECT_THROW(parse_sidecar("{\"bench\":\"b\",\"elapsed_seconds\":1.0,"
                             "\"series\":{\"header\":[],\"rows\":[]},"
                             "\"memory\":{\"vm_hwm_bytes\":\"big\"}}"),
               std::runtime_error);
  EXPECT_THROW(validate_sidecar_schema(v2_memory_doc(-1.0, 30e6)),
               std::runtime_error);
}

TEST(Sidecar, MemoryGrowthPastTheMarginRegresses) {
  const Sidecar base = parse_sidecar(v2_memory_doc(50e6, 30e6));
  // 3x the store footprint: exactly the "memory no longer tracks active
  // chunks" cliff the huge-grid gate exists for.
  const Sidecar fat = parse_sidecar(v2_memory_doc(50e6, 90e6));
  const CompareReport report = compare_sidecars(base, fat, CompareOptions{});
  EXPECT_FALSE(report.ok());
  const CompareRow* row = find_row(report, "-", "store_peak_bytes");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->regression);
  // Shrinking memory is an improvement, never a failure (one-sided gate).
  EXPECT_TRUE(compare_sidecars(base, parse_sidecar(v2_memory_doc(50e6, 3e6)),
                               CompareOptions{})
                  .ok());
}

TEST(Sidecar, MemoryOnOneSideIsANoteNotAFailure) {
  const Sidecar with = parse_sidecar(v2_memory_doc(50e6, 30e6));
  Sidecar without = with;
  without.memory.clear();
  EXPECT_TRUE(compare_sidecars(without, with, CompareOptions{}).ok());
  EXPECT_TRUE(compare_sidecars(with, without, CompareOptions{}).ok());
  EXPECT_FALSE(compare_sidecars(without, with, CompareOptions{})
                   .notes.empty());
}

TEST(Sidecar, ScaleDoctorsMemoryFigures) {
  const std::string doctored =
      scale_sidecar_metrics(v2_memory_doc(50e6, 30e6), 0.5);
  const Sidecar bad = parse_sidecar(doctored);
  // Lower-better figures divided by the speed factor: 0.5x speed = 2x
  // memory, so the gate must flag the doctored run.
  EXPECT_DOUBLE_EQ(bad.memory.at("store_peak_bytes"), 60e6);
  EXPECT_FALSE(compare_sidecars(parse_sidecar(v2_memory_doc(50e6, 30e6)),
                                bad, CompareOptions{})
                   .ok());
}

TEST(Sidecar, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(parse_sidecar("not json"), std::runtime_error);
  EXPECT_THROW(parse_sidecar("{\"bench\":3}"), std::runtime_error);
  // Ragged series rows are structural corruption, v1 or v2.
  EXPECT_THROW(
      parse_sidecar("{\"bench\":\"b\",\"elapsed_seconds\":1.0,"
                    "\"series\":{\"header\":[\"x\",\"y\"],"
                    "\"rows\":[[1,2],[3]]}}"),
      std::runtime_error);
}

}  // namespace
}  // namespace cellflow
