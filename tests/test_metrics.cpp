// Unit tests for the observability primitives: MetricsRegistry families
// and series, histogram bucket semantics, the ProtocolCounts merge, the
// PhaseProfiler span log, and the attach points on System.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/system.hpp"
#include "failure/failure_model.hpp"
#include "helpers.hpp"
#include "obs/profiler.hpp"
#include "obs/protocol_metrics.hpp"
#include "sim/simulator.hpp"

namespace cellflow {
namespace {

TEST(Metrics, CounterStartsAtZeroAndAccumulates) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("cf_test_total", "help");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, SameNameAndLabelsReturnsSameSeries) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("cf_test_total", "help", {{"k", "v"}});
  obs::Counter& b = reg.counter("cf_test_total", "help", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  obs::Counter& other = reg.counter("cf_test_total", "help", {{"k", "w"}});
  EXPECT_NE(&a, &other);
}

TEST(Metrics, LabelOrderDoesNotSplitSeries) {
  obs::MetricsRegistry reg;
  obs::Counter& a =
      reg.counter("cf_test_total", "help", {{"a", "1"}, {"b", "2"}});
  obs::Counter& b =
      reg.counter("cf_test_total", "help", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, ConflictingRedefinitionThrows) {
  obs::MetricsRegistry reg;
  reg.counter("cf_test_total", "help");
  EXPECT_THROW(reg.gauge("cf_test_total", "help"), std::runtime_error);
  EXPECT_THROW(reg.counter("cf_test_total", "different help"),
               std::runtime_error);
}

TEST(Metrics, InvalidNamesAndDuplicateLabelKeysThrow) {
  obs::MetricsRegistry reg;
  EXPECT_THROW(reg.counter("0starts_with_digit", "h"), std::runtime_error);
  EXPECT_THROW(reg.counter("has space", "h"), std::runtime_error);
  EXPECT_THROW(reg.counter("cf_ok", "h", {{"k", "1"}, {"k", "2"}}),
               std::runtime_error);
  EXPECT_TRUE(obs::valid_metric_name("cellflow_rounds_total"));
  EXPECT_TRUE(obs::valid_metric_name("_private:scoped"));
  EXPECT_FALSE(obs::valid_metric_name(""));
}

TEST(Metrics, GaugeIsLastWriteWins) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("cf_test", "help");
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  g.set(-17.0);
  EXPECT_EQ(g.value(), -17.0);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperEdges) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("cf_test", "help", {0.0, 1.0, 2.0});
  h.observe(0.0);   // → le=0
  h.observe(1.0);   // → le=1 (inclusive)
  h.observe(1.5);   // → le=2
  h.observe(99.0);  // → +Inf overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 101.5);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{1, 1, 1, 1}));
}

TEST(Metrics, HistogramObserveManyMatchesRepeatedObserve) {
  obs::MetricsRegistry reg;
  obs::Histogram& a = reg.histogram("cf_a", "h", {1.0, 2.0});
  obs::Histogram& b = reg.histogram("cf_b", "h", {1.0, 2.0});
  for (int k = 0; k < 7; ++k) a.observe(2.0);
  b.observe_many(2.0, 7);
  EXPECT_EQ(a.bucket_counts(), b.bucket_counts());
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
}

TEST(Metrics, HistogramRejectsBadBounds) {
  obs::MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("cf_test", "h", {}), std::runtime_error);
  EXPECT_THROW(reg.histogram("cf_test", "h", {2.0, 1.0}), std::runtime_error);
  reg.histogram("cf_ok", "h", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("cf_ok", "h", {1.0, 3.0}), std::runtime_error);
}

TEST(Metrics, SnapshotIsSortedByNameAndLabels) {
  obs::MetricsRegistry reg;
  reg.counter("cf_zz_total", "h").inc(1);
  reg.counter("cf_aa_total", "h", {{"x", "2"}}).inc(2);
  reg.counter("cf_aa_total", "h", {{"x", "1"}}).inc(3);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "cf_aa_total");
  EXPECT_EQ(snap[1].name, "cf_zz_total");
  ASSERT_EQ(snap[0].series.size(), 2u);
  EXPECT_EQ(snap[0].series[0].labels, (obs::Labels{{"x", "1"}}));
  EXPECT_EQ(snap[0].series[0].counter_value, 3u);
  EXPECT_EQ(snap[0].series[1].labels, (obs::Labels{{"x", "2"}}));
}

TEST(Metrics, ProtocolCountsMergeIsFieldwiseAddition) {
  obs::ProtocolCounts a;
  a.route_relaxations = 3;
  a.signal_grants = 1;
  a.ne_prev_sizes = {1, 0, 2, 0, 0};
  obs::ProtocolCounts b;
  b.route_relaxations = 4;
  b.moves = 5;
  b.ne_prev_sizes = {0, 7, 0, 0, 1};
  a.merge(b);
  EXPECT_EQ(a.route_relaxations, 7u);
  EXPECT_EQ(a.signal_grants, 1u);
  EXPECT_EQ(a.moves, 5u);
  EXPECT_EQ(a.ne_prev_sizes, (std::array<std::uint64_t, 5>{1, 7, 2, 0, 1}));
  a.reset();
  EXPECT_EQ(a.route_relaxations, 0u);
  EXPECT_EQ(a.ne_prev_sizes, (std::array<std::uint64_t, 5>{}));
}

TEST(Metrics, ProtocolMetricsFlushesIntoLabeledFamilies) {
  obs::MetricsRegistry reg;
  obs::ProtocolMetrics pm(reg, "shared");
  obs::ProtocolCounts counts;
  counts.route_relaxations = 10;
  counts.injections = 2;
  counts.ne_prev_sizes = {3, 1, 0, 0, 0};
  pm.add(counts);
  pm.add_round();
  pm.add_failure();
  EXPECT_EQ(reg.counter("cellflow_rounds_total", "Protocol rounds executed",
                        {{"realization", "shared"}})
                .value(),
            1u);
  EXPECT_EQ(
      reg.counter("cellflow_route_relaxations_total",
                  "Neighbor dist values examined by Route",
                  {{"realization", "shared"}})
          .value(),
      10u);
  EXPECT_EQ(reg.counter("cellflow_failures_total", "fail transitions applied",
                        {{"realization", "shared"}})
                .value(),
            1u);
}

TEST(Metrics, SystemRunsProduceProtocolCounters) {
  const Params p(0.2, 0.1, 0.1);
  System sys = testing::make_column_system(4, p);
  obs::MetricsRegistry reg;
  sys.set_metrics(&reg);
  NoFailures none;
  Simulator sim(sys, none);
  sim.run(300);

  const obs::Labels shared{{"realization", "shared"}};
  EXPECT_EQ(reg.counter("cellflow_rounds_total", "Protocol rounds executed",
                        shared)
                .value(),
            300u);
  EXPECT_GT(reg.counter("cellflow_source_injections_total",
                        "Entities injected by sources", shared)
                .value(),
            0u);
  EXPECT_GT(reg.counter("cellflow_move_consumptions_total",
                        "Entities consumed by the target", shared)
                .value(),
            0u);
  // Consistency with the System's own totals.
  EXPECT_EQ(reg.counter("cellflow_move_consumptions_total",
                        "Entities consumed by the target", shared)
                .value(),
            sys.total_arrivals());
  EXPECT_EQ(reg.counter("cellflow_source_injections_total",
                        "Entities injected by sources", shared)
                .value(),
            sys.total_injected());
}

TEST(Metrics, DetachingStopsAccumulation) {
  const Params p(0.2, 0.1, 0.1);
  System sys = testing::make_column_system(4, p);
  obs::MetricsRegistry reg;
  sys.set_metrics(&reg);
  NoFailures none;
  Simulator sim(sys, none);
  sim.run(10);
  sys.set_metrics(nullptr);
  sim.run(10);
  const obs::Labels shared{{"realization", "shared"}};
  EXPECT_EQ(reg.counter("cellflow_rounds_total", "Protocol rounds executed",
                        shared)
                .value(),
            10u);
}

TEST(Metrics, ProfilerRecordsPhaseAndShardSpans) {
  obs::PhaseProfiler prof;
  const auto t0 = obs::PhaseProfiler::Clock::now();
  prof.record("route", 0, -1, t0, t0 + std::chrono::microseconds(5));
  prof.record("route", 0, 0, t0, t0 + std::chrono::microseconds(2));
  prof.record("move", 1, -1, t0, t0 + std::chrono::microseconds(3));
  EXPECT_EQ(prof.span_count(), 3u);
  EXPECT_EQ(prof.total_ns("route"), 5000u);
  EXPECT_EQ(prof.total_ns("move"), 3000u);
  EXPECT_EQ(prof.total_ns("signal"), 0u);
  prof.clear();
  EXPECT_EQ(prof.span_count(), 0u);
}

TEST(Metrics, ProfilerAttachedRunCoversEveryPhase) {
  const Params p(0.2, 0.1, 0.1);
  System sys = testing::make_column_system(4, p);
  obs::PhaseProfiler prof;
  sys.set_profiler(&prof);
  NoFailures none;
  Simulator sim(sys, none);
  sim.run(5);
  EXPECT_GT(prof.total_ns("route"), 0u);
  EXPECT_GT(prof.total_ns("signal"), 0u);
  EXPECT_GT(prof.total_ns("move"), 0u);
  EXPECT_GT(prof.total_ns("inject"), 0u);
  EXPECT_GT(prof.total_ns("round"), 0u);
  bool saw_round_1 = false;
  for (const obs::PhaseProfiler::Span& s : prof.spans())
    if (s.round == 1) saw_round_1 = true;
  EXPECT_TRUE(saw_round_1);
}

}  // namespace
}  // namespace cellflow
