// Tests for the source policies and the System's injection validation.
#include "core/source.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace cellflow {
namespace {

const Params kP(0.2, 0.1, 0.1);  // d = 0.3

TEST(EntryEdgeSource, PlacesOppositeNextDirection) {
  const Grid g(8);
  EntryEdgeSource src;
  CellState st;
  st.next = CellId{1, 1};  // northbound from ⟨1,0⟩ → inject at south edge
  const auto pos = src.propose(g, kP, CellId{1, 0}, st);
  ASSERT_TRUE(pos.has_value());
  EXPECT_DOUBLE_EQ(pos->x, 1.5);
  EXPECT_DOUBLE_EQ(pos->y, 0.1);  // j + l/2
}

TEST(EntryEdgeSource, EachDirection) {
  const Grid g(8);
  EntryEdgeSource src;
  CellState st;
  const CellId self{3, 3};
  st.next = CellId{4, 3};  // eastbound → west edge
  EXPECT_DOUBLE_EQ(src.propose(g, kP, self, st)->x, 3.1);
  st.next = CellId{2, 3};  // westbound → east edge
  EXPECT_DOUBLE_EQ(src.propose(g, kP, self, st)->x, 3.9);
  st.next = CellId{3, 2};  // southbound → north edge
  EXPECT_DOUBLE_EQ(src.propose(g, kP, self, st)->y, 3.9);
}

TEST(EntryEdgeSource, FallsBackToCenterWithoutNext) {
  const Grid g(8);
  EntryEdgeSource src;
  const CellState st;  // next = ⊥
  const auto pos = src.propose(g, kP, CellId{2, 2}, st);
  ASSERT_TRUE(pos.has_value());
  EXPECT_DOUBLE_EQ(pos->x, 2.5);
  EXPECT_DOUBLE_EQ(pos->y, 2.5);
}

TEST(RateLimitedSource, RespectsRateStatistically) {
  const Grid g(8);
  RateLimitedSource src(0.25, 42);
  const CellState st;
  int proposals = 0;
  constexpr int n = 10000;
  for (int k = 0; k < n; ++k)
    if (src.propose(g, kP, CellId{0, 0}, st).has_value()) ++proposals;
  EXPECT_NEAR(static_cast<double>(proposals) / n, 0.25, 0.02);
}

TEST(RateLimitedSource, RateZeroNeverProposes) {
  const Grid g(8);
  RateLimitedSource src(0.0, 1);
  const CellState st;
  for (int k = 0; k < 100; ++k)
    EXPECT_FALSE(src.propose(g, kP, CellId{0, 0}, st).has_value());
}

TEST(RateLimitedSource, InvalidRateRejected) {
  EXPECT_THROW(RateLimitedSource(-0.1, 1), ContractViolation);
  EXPECT_THROW(RateLimitedSource(1.1, 1), ContractViolation);
}

TEST(BoundedSource, StopsAfterBudget) {
  const Grid g(8);
  BoundedSource src(2);
  const CellState st;
  EXPECT_TRUE(src.propose(g, kP, CellId{0, 0}, st).has_value());
  src.note_accepted();
  EXPECT_EQ(src.remaining(), 1u);
  EXPECT_TRUE(src.propose(g, kP, CellId{0, 0}, st).has_value());
  src.note_accepted();
  EXPECT_EQ(src.remaining(), 0u);
  EXPECT_FALSE(src.propose(g, kP, CellId{0, 0}, st).has_value());
}

TEST(BoundedSource, RejectedProposalsDoNotConsumeBudget) {
  const Grid g(8);
  BoundedSource src(1);
  const CellState st;
  (void)src.propose(g, kP, CellId{0, 0}, st);
  (void)src.propose(g, kP, CellId{0, 0}, st);  // no note_accepted between
  EXPECT_EQ(src.remaining(), 1u);
}

TEST(NullSource, NeverProposes) {
  const Grid g(8);
  NullSource src;
  const CellState st;
  EXPECT_FALSE(src.propose(g, kP, CellId{0, 0}, st).has_value());
}

// --- System-level injection behavior ---------------------------------

TEST(SystemInjection, InjectsAtMostOnePerRound) {
  System sys = testing::make_column_system(4, kP);
  sys.update();
  EXPECT_LE(sys.last_events().injected.size(), 1u);
  EXPECT_EQ(sys.entity_count(), sys.total_injected() - sys.total_arrivals());
}

TEST(SystemInjection, SkipsWhenCellSaturated) {
  // Tight params: only a few entities fit per cell; run long with the
  // target unreachable (carve nothing, fail the whole first column's exit)
  // — actually simpler: fail every non-source cell so nothing drains.
  System sys = testing::make_column_system(4, kP);
  for (const CellId id : sys.grid().all_cells())
    if (id != CellId{1, 0}) sys.fail(id);
  testing::run_rounds(sys, 50);
  // Cell is 1×1, d = 0.3 → at most a 4×4 lattice of entities fits; the
  // injector must stop well before 50.
  EXPECT_LE(sys.cell(CellId{1, 0}).members.size(), 16u);
  // And whatever was injected is safely spaced (checked by the oracle in
  // test_safety_random; here just population sanity).
  EXPECT_GT(sys.cell(CellId{1, 0}).members.size(), 0u);
}

TEST(SystemInjection, FailedSourceDoesNotInject) {
  System sys = testing::make_column_system(4, kP);
  sys.fail(CellId{1, 0});
  testing::run_rounds(sys, 10);
  EXPECT_EQ(sys.total_injected(), 0u);
}

TEST(SystemInjection, InjectionEventsCarrySourceCell) {
  System sys = testing::make_column_system(4, kP);
  sys.update();
  ASSERT_EQ(sys.last_events().injected.size(), 1u);
  EXPECT_EQ(sys.last_events().injected[0].first, (CellId{1, 0}));
}

}  // namespace
}  // namespace cellflow
