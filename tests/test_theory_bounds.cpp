// Analytic sanity bounds on the simulation: results the model implies
// mathematically, checked against measured behavior. These catch whole
// classes of implementation bugs (double-moves, double-counted arrivals,
// teleporting entities) that unit tests can miss.
#include <gtest/gtest.h>

#include "core/predicates.hpp"
#include "sim/experiment.hpp"
#include "sim/observers.hpp"
#include "sim/simulator.hpp"

namespace cellflow {
namespace {

TEST(TheoryBounds, ThroughputNeverExceedsPipelineBound) {
  // Entities cross the target's entry edge spaced ≥ d apart along the
  // motion axis moving at most v per round, so throughput ≤ v/d per
  // entry lane. The straight-column workload uses one lane; with
  // abreast entities a cell of width 1 fits ⌊1/d⌋ + 1 lanes. Bound with
  // the lane count for safety.
  for (const auto& [rs, v] :
       {std::pair{0.05, 0.1}, std::pair{0.05, 0.25}, std::pair{0.3, 0.2}}) {
    WorkloadSpec spec = fig7_base(rs, v);
    spec.rounds = 2500;
    const RunResult r = run_workload(spec, 3);
    const double d = 0.25 + rs;  // l + rs
    const double lanes = std::floor(1.0 / d) + 1.0;
    EXPECT_LE(r.throughput, lanes * v / d + 1e-9)
        << "rs=" << rs << " v=" << v;
  }
}

TEST(TheoryBounds, ArrivalsNeverExceedInjections) {
  WorkloadSpec spec = fig7_base(0.05, 0.2);
  spec.rounds = 1500;
  const RunResult r = run_workload(spec, 9);
  EXPECT_LE(r.arrivals, r.injected);
}

TEST(TheoryBounds, PopulationBalanceEquation) {
  // injected = arrived + in-flight, at every round.
  SystemConfig cfg;
  cfg.side = 6;
  cfg.params = Params(0.2, 0.1, 0.1);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 5};
  System sys{cfg};
  for (int k = 0; k < 700; ++k) {
    sys.update();
    ASSERT_EQ(sys.total_injected(),
              sys.total_arrivals() + sys.entity_count())
        << "round " << k;
  }
}

TEST(TheoryBounds, PerRoundDisplacementCap) {
  // No entity may move more than v in one round (transfers re-place at
  // the entry edge, which is also ≤ v from the crossing point along the
  // motion axis... the placed position may differ from pos+v by < l/2;
  // bound by v + l). Checked over a busy execution.
  SystemConfig cfg;
  cfg.side = 6;
  cfg.params = Params(0.2, 0.1, 0.1);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 5};
  System sys{cfg};
  std::vector<std::pair<EntityId, Vec2>> prev;
  const double cap = 0.1 + 0.2 + 1e-9;  // v + l
  for (int k = 0; k < 500; ++k) {
    prev.clear();
    for (const CellState& c : sys.cells())
      for (const Entity& e : c.members) prev.emplace_back(e.id, e.center);
    sys.update();
    for (const CellState& c : sys.cells()) {
      for (const Entity& e : c.members) {
        for (const auto& [id, pos] : prev) {
          if (id == e.id) {
            ASSERT_LE(l1_distance(e.center, pos), cap) << "round " << k;
          }
        }
      }
    }
  }
}

TEST(TheoryBounds, LongRunNoFloatDrift) {
  // 50k rounds of continuous traffic: accumulated v-additions must never
  // push an entity outside its cell's Invariant-1 bounds nor erode the
  // safety margin below the oracle tolerance.
  SystemConfig cfg;
  cfg.side = 5;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 4};
  System sys{cfg};
  for (int k = 0; k < 50000; ++k) {
    sys.update();
    if (k % 500 == 0) {
      ASSERT_FALSE(check_members_in_bounds(sys).has_value()) << "round " << k;
      ASSERT_FALSE(check_safe(sys).has_value()) << "round " << k;
    }
  }
  EXPECT_GT(sys.total_arrivals(), 1000u);
}

TEST(TheoryBounds, StabilizationNeverExceedsCorollarySevenBound) {
  // Already covered parametrically in test_route_stabilization; this is
  // the tight version for the fresh start: convergence takes exactly the
  // eccentricity of the target (longest BFS distance), never more.
  for (const int side : {4, 8, 16}) {
    SystemConfig cfg;
    cfg.side = side;
    cfg.params = Params(0.2, 0.1, 0.1);
    cfg.sources = {};
    cfg.target = CellId{1, side - 1};
    System sys(cfg, nullptr, std::make_unique<NullSource>());
    const auto rho = sys.reference_distances();
    std::uint64_t ecc = 0;
    for (const Dist d : rho)
      if (d.is_finite()) ecc = std::max(ecc, d.hops());
    std::uint64_t rounds = 0;
    for (;; ++rounds) {
      bool agree = true;
      for (const CellId id : sys.grid().all_cells()) {
        if (sys.cell(id).dist != rho[sys.grid().index_of(id)]) {
          agree = false;
          break;
        }
      }
      if (agree) break;
      ASSERT_LE(rounds, ecc) << "side " << side;
      sys.update();
    }
    EXPECT_LE(rounds, ecc);
  }
}

}  // namespace
}  // namespace cellflow
