// Round-trip property suite for src/snapshot (DESIGN.md §11): save at
// round k, restore into a FRESH process-equivalent engine, run both the
// original and the restored engine m more rounds in lockstep — the state
// digest must match at EVERY boundary, the §III-A safety oracles must
// stay clean on the restored engine, and a metrics registry attached at
// the restore boundary must produce byte-identical Prometheus output on
// both. 48 seeds sweep engine (serial / parallel×{2,4}) × scheduler
// (active-set / exhaustive) × realization (shared / message) × network
// (reliable / faulty with partitions) × policies (random choose,
// rate-limited source, stochastic failures).
//
// Also pinned: save∘restore∘save is byte-stable, and every mismatch path
// (wrong config, wrong realization, absent failure model) throws
// kConfigMismatch while leaving the target engine untouched — restores
// are atomic.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/choose.hpp"
#include "core/predicates.hpp"
#include "core/source.hpp"
#include "core/system.hpp"
#include "failure/failure_model.hpp"
#include "msg/msg_audit.hpp"
#include "msg/msg_system.hpp"
#include "net/faulty_network.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "snapshot/snapshot.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

struct Case {
  std::uint64_t seed;
};

void PrintTo(const Case& c, std::ostream* os) { *os << "seed=" << c.seed; }

std::vector<Case> cases() {
  std::vector<Case> v;
  for (std::uint64_t s = 1; s <= 48; ++s) v.push_back(Case{s});
  return v;
}

// ---- shared-variable realization -----------------------------------

/// Everything needed to build the SAME engine twice: a fresh build with
/// identical seeds is the "process-equivalent engine" of the contract.
struct SharedSetup {
  SystemConfig cfg;
  std::string policy;
  double source_rate = 1.0;
  double pf = 0.0;
  double pr = 0.0;
  std::uint64_t choose_seed = 0;
  std::uint64_t source_seed = 0;
  std::uint64_t failure_seed = 0;
  ParallelPolicy parallel = ParallelPolicy::serial();
  RoundScheduler scheduler = RoundScheduler::kActiveSet;
  std::uint64_t k = 0;  // rounds before the snapshot
  std::uint64_t m = 0;  // rounds after the restore
};

SharedSetup shared_setup(std::uint64_t seed) {
  SplitMix64 sm(seed);
  SharedSetup s;
  const int side = 4 + static_cast<int>(sm.next() % 3);  // 4..6
  s.cfg.side = side;
  s.cfg.params = Params(sm.next() % 2 == 0 ? 0.25 : 0.2, 0.05, 0.1);
  s.cfg.sources = {CellId{1, 0}};
  s.cfg.target = CellId{1, side - 1};
  s.policy = sm.next() % 2 == 0 ? "round-robin" : "random";
  s.source_rate = sm.next() % 2 == 0 ? 1.0 : 0.8;
  if (sm.next() % 2 == 0) {
    s.pf = 0.02;
    s.pr = 0.1;
  }
  s.choose_seed = sm.next();
  s.source_seed = sm.next();
  s.failure_seed = sm.next();
  switch (sm.next() % 3) {
    case 0: s.parallel = ParallelPolicy::serial(); break;
    case 1: s.parallel = ParallelPolicy::parallel(2); break;
    default: s.parallel = ParallelPolicy::parallel(4); break;
  }
  s.scheduler = sm.next() % 2 == 0 ? RoundScheduler::kActiveSet
                                   : RoundScheduler::kExhaustive;
  s.k = 30 + sm.next() % 50;
  s.m = 20 + sm.next() % 40;
  return s;
}

std::unique_ptr<System> build_shared(const SharedSetup& s,
                                     std::unique_ptr<FailureModel>& failures) {
  std::unique_ptr<SourcePolicy> source;
  if (s.source_rate >= 1.0) {
    source = std::make_unique<EntryEdgeSource>();
  } else {
    source = std::make_unique<RateLimitedSource>(s.source_rate,
                                                 s.source_seed);
  }
  auto sys = std::make_unique<System>(
      s.cfg, make_choose_policy(s.policy, s.choose_seed), std::move(source));
  sys->set_parallel_policy(s.parallel);
  sys->set_round_scheduler(s.scheduler);
  if (s.pf > 0.0) {
    failures = std::make_unique<RandomFailRecover>(s.pf, s.pr,
                                                   s.failure_seed);
  } else {
    failures = std::make_unique<NoFailures>();
  }
  return sys;
}

void step_shared(System& sys, FailureModel& failures) {
  failures.apply(sys);
  sys.update();
}

class SnapshotRoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(SnapshotRoundTrip, SharedEngineResumesBitIdentically) {
  const SharedSetup setup = shared_setup(GetParam().seed);

  std::unique_ptr<FailureModel> fail_a;
  const std::unique_ptr<System> ap = build_shared(setup, fail_a);
  System& a = *ap;
  for (std::uint64_t r = 0; r < setup.k; ++r) step_shared(a, *fail_a);
  ASSERT_TRUE(check_all(a).empty());

  const std::vector<std::uint8_t> bytes = snapshot::save(a, fail_a.get());

  std::unique_ptr<FailureModel> fail_b;
  const std::unique_ptr<System> bp = build_shared(setup, fail_b);
  System& b = *bp;
  snapshot::restore(b, bytes, fail_b.get());

  ASSERT_EQ(snapshot::state_digest(a), snapshot::state_digest(b));
  // save ∘ restore ∘ save is byte-stable.
  EXPECT_EQ(snapshot::save(b, fail_b.get()), bytes);

  // ProtocolCounts from the restore boundary onward must be identical:
  // attach a fresh registry to each engine and compare the full
  // Prometheus exposition at the end (byte-deterministic).
  obs::MetricsRegistry reg_a, reg_b;
  a.set_metrics(&reg_a);
  b.set_metrics(&reg_b);

  for (std::uint64_t r = 0; r < setup.m; ++r) {
    step_shared(a, *fail_a);
    step_shared(b, *fail_b);
    ASSERT_EQ(snapshot::state_digest(a), snapshot::state_digest(b))
        << "diverged at round " << b.round();
    const auto violations = check_all(b);
    ASSERT_TRUE(violations.empty())
        << "restored engine violated " << to_string(violations.front());
  }
  EXPECT_EQ(obs::to_prometheus(reg_a), obs::to_prometheus(reg_b));
  EXPECT_EQ(a.total_arrivals(), b.total_arrivals());
  EXPECT_EQ(a.total_injected(), b.total_injected());
}

// ---- message-passing realization ------------------------------------

struct MessageSetup {
  MsgSystemConfig cfg;
  bool faulty = false;
  NetFaultSpec spec;
  std::uint64_t net_seed = 0;
  double pf = 0.0;
  double pr = 0.0;
  std::uint64_t env_seed = 0;
  std::uint64_t k = 0;
  std::uint64_t m = 0;
};

MessageSetup message_setup(std::uint64_t seed) {
  SplitMix64 sm(seed);
  MessageSetup s;
  const int side = 4 + static_cast<int>(sm.next() % 2);  // 4..5
  s.cfg.side = side;
  s.cfg.params = Params(0.25, 0.05, 0.1);
  s.cfg.sources = {CellId{1, 0}};
  s.cfg.target = CellId{1, side - 1};
  s.faulty = sm.next() % 2 == 0;
  if (s.faulty) {
    s.spec.drop_prob = 0.1;
    s.spec.dup_prob = 0.05;
    s.spec.delay_prob = 0.05;
    s.spec.max_delay_rounds = 2;
    if (sm.next() % 2 == 0) {
      // A mid-run column partition, active across the snapshot boundary
      // for some seeds.
      NetPartition part{20, 60, CellMask(Grid(side))};
      for (const CellId id : Grid(side).all_cells())
        if (id.j < 2) part.side.set(id);
      s.spec.partitions = {part};
    }
  }
  s.net_seed = sm.next();
  if (sm.next() % 2 == 0) {
    s.pf = 0.01;
    s.pr = 0.1;
  }
  s.env_seed = sm.next();
  s.k = 30 + sm.next() % 40;
  s.m = 20 + sm.next() % 30;
  return s;
}

std::unique_ptr<MessageSystem> build_message(const MessageSetup& s) {
  std::unique_ptr<NetworkModel> net;
  if (s.faulty) net = std::make_unique<FaultyNetwork>(s.spec, s.net_seed);
  return std::make_unique<MessageSystem>(s.cfg, std::move(net));
}

/// cellflow_sim's message-mode environment: fail/recover drawn from one
/// external stream (the snapshot's optional env-rng section).
void step_message(MessageSystem& msg, Xoshiro256& env, double pf,
                  double pr) {
  if (pf > 0.0) {
    for (const CellId id : msg.grid().all_cells()) {
      if (msg.cell(id).failed) {
        if (env.bernoulli(pr)) msg.recover(id);
      } else if (env.bernoulli(pf)) {
        msg.fail(id);
      }
    }
  }
  msg.update();
}

TEST_P(SnapshotRoundTrip, MessageEngineResumesBitIdentically) {
  const MessageSetup setup = message_setup(GetParam().seed);

  const std::unique_ptr<MessageSystem> ap = build_message(setup);
  MessageSystem& a = *ap;
  Xoshiro256 env_a(setup.env_seed);
  for (std::uint64_t r = 0; r < setup.k; ++r) {
    step_message(a, env_a, setup.pf, setup.pr);
  }
  ASSERT_TRUE(msg_audit::check_all(a).empty());

  const std::vector<std::uint8_t> bytes = snapshot::save(a, &env_a);

  const std::unique_ptr<MessageSystem> bp = build_message(setup);
  MessageSystem& b = *bp;
  Xoshiro256 env_b(setup.env_seed ^ 0xDEAD);  // overwritten by restore
  snapshot::restore(b, bytes, &env_b);

  ASSERT_EQ(snapshot::state_digest(a), snapshot::state_digest(b));
  EXPECT_EQ(env_a.state(), env_b.state());
  EXPECT_EQ(snapshot::save(b, &env_b), bytes);

  obs::MetricsRegistry reg_a, reg_b;
  a.set_metrics(&reg_a);
  b.set_metrics(&reg_b);

  for (std::uint64_t r = 0; r < setup.m; ++r) {
    step_message(a, env_a, setup.pf, setup.pr);
    step_message(b, env_b, setup.pf, setup.pr);
    ASSERT_EQ(snapshot::state_digest(a), snapshot::state_digest(b))
        << "diverged at round " << b.round();
    const auto violations = msg_audit::check_all(b);
    ASSERT_TRUE(violations.empty())
        << "restored engine violated " << violations.front().predicate
        << " at " << to_string(violations.front().cell) << ": "
        << violations.front().detail;
  }
  EXPECT_EQ(obs::to_prometheus(reg_a), obs::to_prometheus(reg_b));
  EXPECT_EQ(a.total_arrivals(), b.total_arrivals());
  EXPECT_EQ(a.total_messages(), b.total_messages());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotRoundTrip,
                         ::testing::ValuesIn(cases()));

// ---- mismatch paths are typed and atomic -----------------------------

SystemConfig small_config() {
  SystemConfig cfg;
  cfg.side = 4;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 3};
  return cfg;
}

std::vector<std::uint8_t> run_and_save(System& sys, std::uint64_t rounds) {
  for (std::uint64_t r = 0; r < rounds; ++r) sys.update();
  return snapshot::save(sys);
}

TEST(SnapshotMismatch, DifferentParamsRejectedAtomically) {
  System a(small_config());
  const auto bytes = run_and_save(a, 20);

  SystemConfig other = small_config();
  other.params = Params(0.25, 0.1, 0.1);  // different rs
  System b(other);
  for (std::uint64_t r = 0; r < 5; ++r) b.update();
  const std::uint64_t before = snapshot::state_digest(b);

  try {
    snapshot::restore(b, bytes);
    FAIL() << "mismatched config accepted";
  } catch (const snapshot::SnapshotError& e) {
    EXPECT_EQ(e.code(), snapshot::Errc::kConfigMismatch);
  }
  EXPECT_EQ(snapshot::state_digest(b), before) << "failed restore mutated";
}

TEST(SnapshotMismatch, DifferentGridSideRejected) {
  System a(small_config());
  const auto bytes = run_and_save(a, 10);
  SystemConfig other = small_config();
  other.side = 5;
  other.target = CellId{1, 4};
  System b(other);
  EXPECT_THROW(snapshot::restore(b, bytes), snapshot::SnapshotError);
}

TEST(SnapshotMismatch, SharedSnapshotRejectedByMessageEngine) {
  System a(small_config());
  const auto bytes = run_and_save(a, 10);

  MsgSystemConfig mcfg;
  mcfg.side = 4;
  mcfg.params = Params(0.25, 0.05, 0.1);
  mcfg.sources = {CellId{1, 0}};
  mcfg.target = CellId{1, 3};
  MessageSystem b(mcfg);
  const std::uint64_t before = snapshot::state_digest(b);
  try {
    snapshot::restore(b, bytes);
    FAIL() << "shared snapshot accepted by message engine";
  } catch (const snapshot::SnapshotError& e) {
    EXPECT_EQ(e.code(), snapshot::Errc::kConfigMismatch);
  }
  EXPECT_EQ(snapshot::state_digest(b), before);
}

TEST(SnapshotMismatch, MessageSnapshotRejectedBySharedEngine) {
  MsgSystemConfig mcfg;
  mcfg.side = 4;
  mcfg.params = Params(0.25, 0.05, 0.1);
  mcfg.sources = {CellId{1, 0}};
  mcfg.target = CellId{1, 3};
  MessageSystem a(mcfg);
  for (int r = 0; r < 10; ++r) a.update();
  const auto bytes = snapshot::save(a);

  System b(small_config());
  const std::uint64_t before = snapshot::state_digest(b);
  try {
    snapshot::restore(b, bytes);
    FAIL() << "message snapshot accepted by shared engine";
  } catch (const snapshot::SnapshotError& e) {
    EXPECT_EQ(e.code(), snapshot::Errc::kConfigMismatch);
  }
  EXPECT_EQ(snapshot::state_digest(b), before);
}

TEST(SnapshotMismatch, FailureModelPresenceMustMatch) {
  System a(small_config());
  NoFailures failures;
  for (int r = 0; r < 10; ++r) a.update();
  const auto with = snapshot::save(a, &failures);
  const auto without = snapshot::save(a);

  System b(small_config());
  NoFailures fb;
  // Carried state but no model supplied, and vice versa.
  EXPECT_THROW(snapshot::restore(b, with), snapshot::SnapshotError);
  EXPECT_THROW(snapshot::restore(b, without, &fb),
               snapshot::SnapshotError);
  // Matched shapes both succeed.
  EXPECT_NO_THROW(snapshot::restore(b, with, &fb));
  EXPECT_NO_THROW(snapshot::restore(b, without));
}

TEST(SnapshotMismatch, NetworkKindMustMatch) {
  MsgSystemConfig mcfg;
  mcfg.side = 4;
  mcfg.params = Params(0.25, 0.05, 0.1);
  mcfg.sources = {CellId{1, 0}};
  mcfg.target = CellId{1, 3};
  MessageSystem sync_sys(mcfg);
  for (int r = 0; r < 10; ++r) sync_sys.update();
  const auto bytes = snapshot::save(sync_sys);

  NetFaultSpec spec;
  spec.drop_prob = 0.1;
  MessageSystem faulty_sys(mcfg,
                           std::make_unique<FaultyNetwork>(spec, 1));
  try {
    snapshot::restore(faulty_sys, bytes);
    FAIL() << "sync snapshot accepted by faulty-network engine";
  } catch (const snapshot::SnapshotError& e) {
    EXPECT_EQ(e.code(), snapshot::Errc::kConfigMismatch);
  }
}

TEST(SnapshotFiles, WriteReadRoundTrip) {
  System a(small_config());
  const auto bytes = run_and_save(a, 15);
  const std::string path = ::testing::TempDir() + "cellflow_snap_rt.bin";
  snapshot::write_file(path, bytes);
  EXPECT_EQ(snapshot::read_file(path), bytes);
  EXPECT_THROW((void)snapshot::read_file(path + ".missing"),
               snapshot::SnapshotError);
}

}  // namespace
}  // namespace cellflow
