// Self-stabilization: from *arbitrarily corrupted* control state
// (dist/next/token/signal garbage in every cell), the protocol returns to
// correct routing and resumed progress, with safety intact throughout —
// the paper's headline "stabilizing" property exercised adversarially.
#include <gtest/gtest.h>

#include "core/choose.hpp"
#include "core/predicates.hpp"
#include "failure/failure_model.hpp"
#include "helpers.hpp"
#include "sim/observers.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

const Params kP(0.2, 0.1, 0.1);

// Fills every cell's control variables with seeded garbage: random finite
// or infinite dists, random (possibly non-adjacent!) next/token/signal.
void corrupt_everything(System& sys, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const int n = sys.grid().side();
  const auto random_id = [&]() -> OptCellId {
    if (rng.bernoulli(0.3)) return std::nullopt;
    return CellId{static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n))),
                  static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n)))};
  };
  for (const CellId id : sys.grid().all_cells()) {
    const Dist dist = rng.bernoulli(0.3)
                          ? Dist::infinity()
                          : Dist::finite(rng.below(100));
    sys.corrupt_control_state(id, dist, random_id(), random_id(), random_id());
  }
}

bool routing_agrees(const System& sys) {
  const auto rho = sys.reference_distances();
  for (const CellId id : sys.grid().all_cells()) {
    const Dist expect = rho[sys.grid().index_of(id)];
    if (expect.is_infinite()) continue;
    if (sys.cell(id).dist != expect) return false;
  }
  return true;
}

class SelfStabilization : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelfStabilization, RoutingRecoversFromArbitraryCorruption) {
  System sys = testing::make_column_system(8, kP);
  testing::run_rounds(sys, 20);
  ASSERT_TRUE(routing_agrees(sys));

  corrupt_everything(sys, GetParam());
  // O(N²) recovery bound, generous constant.
  std::uint64_t rounds = 0;
  while (!routing_agrees(sys) && rounds < 4 * 64) {
    sys.update();
    ++rounds;
  }
  EXPECT_TRUE(routing_agrees(sys)) << "after " << rounds << " rounds";
}

TEST_P(SelfStabilization, SafetyHoldsDuringRecovery) {
  // Entities in flight while the control state is garbage: Move acts only
  // on freshly-computed signals, so corruption must never cause a safety
  // violation even on the very next round.
  System sys = testing::make_column_system(8, kP);
  testing::run_rounds(sys, 120);  // populate the column with traffic
  ASSERT_GT(sys.entity_count(), 0u);

  corrupt_everything(sys, GetParam() ^ 0xABCDEF);
  SafetyMonitor safety;
  sys.set_phase_hook([&](const System& s, UpdatePhase phase) {
    safety.on_phase(s, phase);
  });
  for (int k = 0; k < 400; ++k) {
    sys.update();
    safety.on_round(sys, sys.last_events());
  }
  EXPECT_TRUE(safety.clean()) << safety.report();
}

TEST_P(SelfStabilization, ProgressResumesAfterCorruption) {
  System sys = testing::make_column_system(8, kP);
  testing::run_rounds(sys, 200);
  const std::uint64_t arrivals_before = sys.total_arrivals();
  ASSERT_GT(arrivals_before, 0u);

  corrupt_everything(sys, GetParam() + 17);
  testing::run_rounds(sys, 600);
  // Traffic must be flowing again well beyond the pre-corruption count.
  EXPECT_GT(sys.total_arrivals(), arrivals_before + 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelfStabilization,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(SelfStabilization, CorruptedTargetReanchorsItself) {
  System sys = testing::make_column_system(6, kP);
  testing::run_rounds(sys, 15);
  sys.corrupt_control_state(sys.target(), Dist::finite(42), CellId{0, 0},
                            CellId{0, 0}, std::nullopt);
  sys.update();
  EXPECT_EQ(sys.cell(sys.target()).dist, Dist::zero());
  EXPECT_EQ(sys.cell(sys.target()).next, OptCellId{});
}

TEST(SelfStabilization, CorruptionPlusFailuresStillRecovers) {
  System sys = testing::make_column_system(8, kP);
  testing::run_rounds(sys, 20);
  corrupt_everything(sys, 99);
  // Simultaneously fail a wall (with a gap), then let everything settle.
  for (int j = 0; j < 7; ++j) sys.fail(CellId{4, j});
  std::uint64_t rounds = 0;
  while (!routing_agrees(sys) && rounds < 6 * 64) {
    sys.update();
    ++rounds;
  }
  EXPECT_TRUE(routing_agrees(sys));
}

}  // namespace
}  // namespace cellflow
