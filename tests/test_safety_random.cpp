// The central property test of the reproduction: Theorem 5 (Safety), plus
// Invariants 1–2, footprint separation, and Lemma 3's H — checked on
// EVERY round of randomized executions across a grid of parameter
// combinations, token policies, and failure regimes.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <tuple>

#include "core/choose.hpp"
#include "core/predicates.hpp"
#include "failure/failure_model.hpp"
#include "sim/observers.hpp"
#include "sim/simulator.hpp"

namespace cellflow {
namespace {

struct SafetyCase {
  int side;
  double l;
  double rs;
  double v;
  std::string choose;
  double pf;
  double pr;
  std::uint64_t seed;
  std::uint64_t rounds;
};

void PrintTo(const SafetyCase& c, std::ostream* os) {
  *os << "side=" << c.side << " l=" << c.l << " rs=" << c.rs << " v=" << c.v
      << " choose=" << c.choose << " pf=" << c.pf << " pr=" << c.pr
      << " seed=" << c.seed;
}

class SafetyRandom : public ::testing::TestWithParam<SafetyCase> {};

TEST_P(SafetyRandom, AllOraclesHoldEveryRound) {
  const SafetyCase& c = GetParam();
  SystemConfig cfg;
  cfg.side = c.side;
  cfg.params = Params(c.l, c.rs, c.v);
  cfg.sources = {CellId{1, 0}, CellId{c.side - 1, c.side / 2}};
  cfg.target = CellId{1, c.side - 1};
  System sys(cfg, make_choose_policy(c.choose, c.seed));

  std::unique_ptr<FailureModel> failures;
  if (c.pf > 0.0) {
    failures = std::make_unique<RandomFailRecover>(c.pf, c.pr, c.seed ^ 0x9E37ULL);
  } else {
    failures = std::make_unique<NoFailures>();
  }

  Simulator sim(sys, *failures);
  SafetyMonitor safety;
  ThroughputMeter meter;
  sim.add_observer(safety);
  sim.add_observer(meter);
  sim.run(c.rounds);

  EXPECT_TRUE(safety.clean()) << safety.report();
  // The run must be non-trivial: entities were injected and (for
  // failure-free runs) reached the target.
  EXPECT_GT(sys.total_injected(), 0u);
  if (c.pf == 0.0) {
    EXPECT_GT(meter.arrivals(), 0u);
  }
}

std::vector<SafetyCase> safety_cases() {
  std::vector<SafetyCase> cases;
  // Parameter sweep, failure-free, round-robin.
  for (const auto& [l, rs, v] :
       {std::tuple{0.25, 0.05, 0.1}, std::tuple{0.25, 0.05, 0.25},
        std::tuple{0.2, 0.1, 0.2}, std::tuple{0.1, 0.05, 0.05},
        std::tuple{0.25, 0.5, 0.2}, std::tuple{0.1, 0.8, 0.1},
        std::tuple{0.5, 0.3, 0.45}}) {
    cases.push_back({6, l, rs, v, "round-robin", 0.0, 0.0, 1, 600});
  }
  // Random choose policy, several seeds.
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    cases.push_back({6, 0.2, 0.1, 0.2, "random", 0.0, 0.0, seed, 600});
  }
  // Lowest-id (unfair but must still be SAFE).
  cases.push_back({6, 0.2, 0.1, 0.2, "lowest-id", 0.0, 0.0, 5, 600});
  // Failure/recovery regimes (Figure 9 parameters and harsher).
  for (const auto& [pf, pr] :
       {std::pair{0.01, 0.05}, std::pair{0.05, 0.2}, std::pair{0.1, 0.1},
        std::pair{0.3, 0.3}}) {
    for (const std::uint64_t seed : {21ull, 22ull}) {
      cases.push_back({6, 0.2, 0.05, 0.2, "round-robin", pf, pr, seed, 800});
    }
  }
  // A bigger grid.
  cases.push_back({12, 0.25, 0.05, 0.2, "round-robin", 0.0, 0.0, 31, 800});
  cases.push_back({12, 0.2, 0.05, 0.2, "round-robin", 0.02, 0.1, 32, 800});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SafetyRandom,
                         ::testing::ValuesIn(safety_cases()));

// Seeded dense initial configurations: fill cells with a legal lattice of
// entities and let the protocol drain them — the hardest safety regime
// because every strip starts occupied.
class SafetyDenseStart : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafetyDenseStart, DrainsWithoutViolation) {
  SystemConfig cfg;
  cfg.side = 5;
  cfg.params = Params(0.2, 0.1, 0.1);  // d = 0.3
  cfg.sources = {};
  cfg.target = CellId{2, 4};
  System sys(cfg, make_choose_policy("random", GetParam()),
             std::make_unique<NullSource>());
  // 3×3 lattice of entities in every non-target cell of rows j ≤ 2
  // (0.35 spacing keeps a strict margin above d = 0.3 so the lattice is
  // robust to floating-point representation of d).
  for (const CellId id : sys.grid().all_cells()) {
    if (id == cfg.target || id.j > 2) continue;
    for (int a = 0; a < 3; ++a)
      for (int b = 0; b < 3; ++b)
        sys.seed_entity(id, Vec2{id.i + 0.15 + 0.35 * a, id.j + 0.15 + 0.35 * b});
  }
  const std::size_t seeded = sys.entity_count();
  ASSERT_EQ(seeded, 9u * 15u);

  NoFailures none;
  Simulator sim(sys, none);
  SafetyMonitor safety;
  sim.add_observer(safety);
  sim.run(6000);
  EXPECT_TRUE(safety.clean()) << safety.report();
  // Entities must drain substantially (progress under congestion).
  EXPECT_LT(sys.entity_count(), seeded / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetyDenseStart,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace cellflow
