// Differential pinning of the parallel round engine (ParallelPolicy):
// for randomized scenarios spanning grid sizes, source counts, failure
// schedules, both MovementRules and both SignalRules, the serial engine
// and the sharded engine at 1/2/4/8 threads must produce *bit-identical*
// full states and event streams after every round — not merely equivalent
// up to reordering. The §III-A oracles run on every round as well, so a
// parallelization bug cannot hide behind a self-consistent-but-wrong
// execution. Also pins the canonicalizations the contract rests on:
// transfer-merge order and source-list order are iteration-order
// invariant, and CELLFLOW_THREADS parsing fails loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/choose.hpp"
#include "core/predicates.hpp"
#include "core/system.hpp"
#include "failure/failure_model.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

// Bit-exact comparison: every protocol variable of every cell, in exact
// stored order (members insertion order included — the engines must not
// even reorder within a cell).
void expect_bit_identical(const System& a, const System& b, int round,
                          const std::string& label) {
  ASSERT_EQ(a.round(), b.round()) << label << " round " << round;
  ASSERT_EQ(a.total_arrivals(), b.total_arrivals())
      << label << " round " << round;
  ASSERT_EQ(a.total_injected(), b.total_injected())
      << label << " round " << round;
  for (const CellId id : a.grid().all_cells()) {
    const CellState& ca = a.cell(id);
    const CellState& cb = b.cell(id);
    ASSERT_EQ(ca.failed, cb.failed) << label << " " << to_string(id);
    ASSERT_EQ(ca.dist, cb.dist) << label << " " << to_string(id);
    ASSERT_EQ(ca.next, cb.next) << label << " " << to_string(id);
    ASSERT_EQ(ca.token, cb.token) << label << " " << to_string(id);
    ASSERT_EQ(ca.signal, cb.signal) << label << " " << to_string(id);
    ASSERT_EQ(ca.ne_prev, cb.ne_prev) << label << " " << to_string(id);
    ASSERT_EQ(ca.members, cb.members)
        << label << " " << to_string(id) << " round " << round;
  }
}

// The RoundEvents streams must match element-for-element too: observers
// (traces, throughput meters, figure scripts) consume them directly.
void expect_identical_events(const RoundEvents& a, const RoundEvents& b,
                             int round, const std::string& label) {
  ASSERT_EQ(a.round, b.round) << label << " round " << round;
  ASSERT_EQ(a.arrivals, b.arrivals) << label << " round " << round;
  ASSERT_EQ(a.moved, b.moved) << label << " round " << round;
  ASSERT_EQ(a.blocked, b.blocked) << label << " round " << round;
  ASSERT_EQ(a.injected, b.injected) << label << " round " << round;
  ASSERT_EQ(a.transfers.size(), b.transfers.size())
      << label << " round " << round;
  for (std::size_t k = 0; k < a.transfers.size(); ++k) {
    const TransferEvent& ta = a.transfers[k];
    const TransferEvent& tb = b.transfers[k];
    ASSERT_EQ(ta.entity, tb.entity) << label << " round " << round;
    ASSERT_EQ(ta.from, tb.from) << label << " round " << round;
    ASSERT_EQ(ta.to, tb.to) << label << " round " << round;
    ASSERT_EQ(ta.consumed, tb.consumed) << label << " round " << round;
  }
}

struct Scenario {
  std::uint64_t seed;
};

void PrintTo(const Scenario& s, std::ostream* os) { *os << "seed=" << s.seed; }

class ParallelDifferential : public ::testing::TestWithParam<Scenario> {};

TEST_P(ParallelDifferential, BitIdenticalToSerialAtEveryThreadCount) {
  const std::uint64_t seed = GetParam().seed;
  Xoshiro256 rng(seed * 7919 + 13);

  const auto u = [&rng](int n) {
    return static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n)));
  };

  // Random configuration, same envelope as tests/test_differential.cpp.
  const int side = 4 + static_cast<int>(rng.below(5));  // 4..8
  const double l = rng.uniform(0.1, 0.35);
  const double rs = rng.uniform(0.05, std::min(0.4, 0.95 - l));
  const double v = rng.uniform(0.05, l);
  const CellId target{u(side), u(side)};
  std::vector<CellId> sources;
  const std::size_t n_sources = 1 + rng.below(2);
  while (sources.size() < n_sources) {
    const CellId c{u(side), u(side)};
    if (c == target) continue;
    if (std::find(sources.begin(), sources.end(), c) != sources.end())
      continue;
    sources.push_back(c);
  }

  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(l, rs, v);
  cfg.target = target;
  cfg.sources = sources;
  cfg.movement_rule =
      (seed % 2 == 0) ? MovementRule::kCoupled : MovementRule::kCompacting;
  // Every 5th seed runs the UNSAFE always-grant ablation: the engines
  // must agree bit-for-bit even on executions that violate Safe.
  cfg.signal_rule =
      (seed % 5 == 0) ? SignalRule::kAlwaysGrant : SignalRule::kBlocking;
  // Every 7th seed uses the stateful RandomChoose policy, which pins the
  // Signal phase to the serial loop even under kParallel — equality must
  // hold through that path too. Each engine gets its own instance with
  // the same stream seed.
  const bool random_choose = (seed % 7 == 0);
  const auto choose = [&]() -> std::unique_ptr<ChoosePolicy> {
    return random_choose ? make_choose_policy("random", 1000 + seed) : nullptr;
  };

  System serial{cfg, choose()};
  serial.set_parallel_policy(ParallelPolicy::serial());
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<std::unique_ptr<System>> engines;
  for (const int t : thread_counts) {
    engines.push_back(std::make_unique<System>(cfg, choose()));
    engines.back()->set_parallel_policy(ParallelPolicy::parallel(t));
  }

  // Random but identical failure schedule, driven by the serial state.
  for (int round = 0; round < 60; ++round) {
    for (const CellId id : serial.grid().all_cells()) {
      if (serial.cell(id).failed) {
        if (rng.bernoulli(0.05)) {
          serial.recover(id);
          for (auto& e : engines) e->recover(id);
        }
      } else if (rng.bernoulli(0.012)) {
        serial.fail(id);
        for (auto& e : engines) e->fail(id);
      }
    }

    const RoundEvents serial_events = serial.update();
    for (std::size_t k = 0; k < engines.size(); ++k) {
      const RoundEvents& ev = engines[k]->update();
      const std::string label =
          "threads=" + std::to_string(thread_counts[k]);
      expect_bit_identical(serial, *engines[k], round, label);
      expect_identical_events(serial_events, ev, round, label);
    }

    // §III-A oracles, on the serial state and one parallel state. The
    // always-grant ablation violates Safe by design; there only the
    // structural invariant (disjoint Members) is meaningful.
    if (cfg.signal_rule == SignalRule::kBlocking) {
      for (const System* sys : {&serial, engines[1].get()}) {
        const auto violations = check_all(*sys);
        ASSERT_TRUE(violations.empty())
            << "round " << round << ": " << to_string(violations.front());
      }
    } else {
      for (const System* sys : {&serial, engines[1].get()}) {
        const auto violation = check_members_disjoint(*sys);
        ASSERT_FALSE(violation.has_value())
            << "round " << round << ": " << to_string(*violation);
      }
    }
  }
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  for (std::uint64_t s = 1; s <= 48; ++s) out.push_back({s});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDifferential,
                         ::testing::ValuesIn(scenarios()));

// The golden corridor of tests/test_golden_trace.cpp, replayed under the
// parallel engine: the pinned verbatim trace must come out of every
// thread count (ISSUE acceptance: 1, 2, and 8 threads).
TEST(ParallelGoldenTrace, PinnedTraceAtEveryThreadCount) {
  for (const int threads : {1, 2, 8}) {
    SystemConfig cfg;
    cfg.side = 3;
    cfg.params = Params(0.25, 0.25, 0.25);
    cfg.sources = {};
    cfg.target = CellId{2, 0};
    System sys(cfg, nullptr, std::make_unique<NullSource>());
    sys.set_parallel_policy(ParallelPolicy::parallel(threads));
    sys.seed_entity(CellId{0, 0}, Vec2{0.5, 0.5});

    NoFailures none;
    Simulator sim(sys, none);
    TraceRecorder trace;
    sim.add_observer(trace);
    sim.run(12);

    const std::string expected =
        "2 transfer p0 <0,0> -> <1,0>\n"
        "6 consume p0 <1,0> -> <2,0>\n";
    EXPECT_EQ(trace.serialize(), expected) << "threads=" << threads;
    EXPECT_EQ(sys.total_arrivals(), 1u) << "threads=" << threads;
  }
}

// Regression for the latent-nondeterminism fix: canonical_transfer_order
// must map any permutation of the per-cell transfer groups (the degrees
// of freedom an engine's internal iteration order has) back to the
// serial in-order sequence.
TEST(CanonicalOrder, TransferMergeIsIterationOrderInvariant) {
  const Grid grid(5);
  // Serial order: ascending origin-cell index; within a cell, Members
  // (insertion) order. Give some cells multi-entity groups so the
  // within-group order matters.
  std::vector<std::vector<PendingTransfer>> groups;
  std::uint64_t next_id = 0;
  for (const CellId from : grid.all_cells()) {
    if (grid.index_of(from) % 3 != 0) continue;  // sparse, like real rounds
    std::vector<PendingTransfer> group;
    const std::size_t n = 1 + grid.index_of(from) % 2;
    for (std::size_t k = 0; k < n; ++k) {
      group.push_back(PendingTransfer{
          Entity{EntityId{next_id++}, Vec2{0.5, 0.5}}, from,
          CellId{from.i, (from.j + 1) % 5}});
    }
    groups.push_back(std::move(group));
  }
  std::vector<PendingTransfer> serial_order;
  for (const auto& g : groups)
    serial_order.insert(serial_order.end(), g.begin(), g.end());

  Xoshiro256 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    // Permute whole groups (within-group order is the origin cell's
    // Members order, which no engine reorders).
    auto permuted = groups;
    for (std::size_t k = permuted.size(); k > 1; --k)
      std::swap(permuted[k - 1], permuted[rng.below(k)]);
    std::vector<PendingTransfer> flat;
    for (const auto& g : permuted)
      flat.insert(flat.end(), g.begin(), g.end());

    canonical_transfer_order(grid, flat);

    ASSERT_EQ(flat.size(), serial_order.size());
    for (std::size_t k = 0; k < flat.size(); ++k) {
      ASSERT_EQ(flat[k].entity, serial_order[k].entity) << "trial " << trial;
      ASSERT_EQ(flat[k].from, serial_order[k].from) << "trial " << trial;
      ASSERT_EQ(flat[k].to, serial_order[k].to) << "trial " << trial;
    }
  }
}

// Regression for the other iteration-order freedom: the order the caller
// lists sources in must not affect anything — injection order (and hence
// entity-id assignment) is pinned to ascending cell id at construction.
TEST(CanonicalOrder, SourceListOrderIsIrrelevant) {
  SystemConfig fwd;
  fwd.side = 6;
  fwd.params = Params(0.2, 0.05, 0.15);
  fwd.target = CellId{3, 5};
  fwd.sources = {CellId{0, 0}, CellId{2, 1}, CellId{5, 0}};
  SystemConfig rev = fwd;
  rev.sources = {CellId{5, 0}, CellId{0, 0}, CellId{2, 1},
                 CellId{0, 0}};  // duplicate too

  System a{fwd};
  System b{rev};
  a.set_parallel_policy(ParallelPolicy::serial());
  b.set_parallel_policy(ParallelPolicy::serial());

  const std::vector<CellId> canonical = {CellId{0, 0}, CellId{2, 1},
                                         CellId{5, 0}};
  ASSERT_EQ(std::vector<CellId>(a.sources().begin(), a.sources().end()),
            canonical);
  ASSERT_EQ(std::vector<CellId>(b.sources().begin(), b.sources().end()),
            canonical);

  for (int round = 0; round < 150; ++round) {
    const RoundEvents& ea = a.update();
    const RoundEvents& eb = b.update();
    expect_bit_identical(a, b, round, "source-order");
    expect_identical_events(ea, eb, round, "source-order");
  }
  EXPECT_GT(a.total_injected(), 0u);
}

TEST(ParallelPolicyEnv, ParsesValidValuesAndRejectsGarbage) {
  const char* old = std::getenv("CELLFLOW_THREADS");
  const std::string saved = old != nullptr ? old : "";
  const bool had = old != nullptr;

  ASSERT_EQ(setenv("CELLFLOW_THREADS", "3", 1), 0);
  EXPECT_EQ(parallel_policy_from_env(), ParallelPolicy::parallel(3));
  ASSERT_EQ(setenv("CELLFLOW_THREADS", "0", 1), 0);
  EXPECT_EQ(parallel_policy_from_env(), ParallelPolicy::serial());
  ASSERT_EQ(setenv("CELLFLOW_THREADS", "", 1), 0);
  EXPECT_EQ(parallel_policy_from_env(), ParallelPolicy::serial());
  ASSERT_EQ(unsetenv("CELLFLOW_THREADS"), 0);
  EXPECT_EQ(parallel_policy_from_env(), ParallelPolicy::serial());
  for (const char* bad : {"banana", "-2", "3x", "1000000"}) {
    ASSERT_EQ(setenv("CELLFLOW_THREADS", bad, 1), 0);
    EXPECT_THROW(static_cast<void>(parallel_policy_from_env()),
                 std::runtime_error)
        << bad;
  }

  if (had) {
    ASSERT_EQ(setenv("CELLFLOW_THREADS", saved.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("CELLFLOW_THREADS"), 0);
  }
}

TEST(ParallelPolicy, SetPolicyValidatesThreadCount) {
  System sys{SystemConfig{}};
  EXPECT_THROW(sys.set_parallel_policy(ParallelPolicy::parallel(0)),
               ContractViolation);
  // Same bound as CELLFLOW_THREADS — a typo'd CLI flag cannot spawn a
  // runaway number of workers.
  EXPECT_THROW(sys.set_parallel_policy(ParallelPolicy::parallel(100000)),
               ContractViolation);
  sys.set_parallel_policy(ParallelPolicy::parallel(2));
  EXPECT_EQ(sys.parallel_policy(), ParallelPolicy::parallel(2));
  sys.set_parallel_policy(ParallelPolicy::serial());
  EXPECT_EQ(sys.parallel_policy(), ParallelPolicy::serial());
}

}  // namespace
}  // namespace cellflow
