// Differential pinning of the parallel round engine (ParallelPolicy):
// for randomized scenarios spanning grid sizes, source counts, failure
// schedules, both MovementRules and both SignalRules, the serial engine
// and the sharded engine at 1/2/4/8 threads must produce *bit-identical*
// full states and event streams after every round — not merely equivalent
// up to reordering. The §III-A oracles run on every round as well, so a
// parallelization bug cannot hide behind a self-consistent-but-wrong
// execution. Also pins the canonicalizations the contract rests on:
// transfer-merge order and source-list order are iteration-order
// invariant, and CELLFLOW_THREADS parsing fails loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/choose.hpp"
#include "core/predicates.hpp"
#include "core/system.hpp"
#include "failure/failure_model.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

// Bit-exact comparison: every protocol variable of every cell, in exact
// stored order (members insertion order included — the engines must not
// even reorder within a cell).
void expect_bit_identical(const System& a, const System& b, int round,
                          const std::string& label) {
  ASSERT_EQ(a.round(), b.round()) << label << " round " << round;
  ASSERT_EQ(a.total_arrivals(), b.total_arrivals())
      << label << " round " << round;
  ASSERT_EQ(a.total_injected(), b.total_injected())
      << label << " round " << round;
  for (const CellId id : a.grid().all_cells()) {
    const CellState& ca = a.cell(id);
    const CellState& cb = b.cell(id);
    ASSERT_EQ(ca.failed, cb.failed) << label << " " << to_string(id);
    ASSERT_EQ(ca.dist, cb.dist) << label << " " << to_string(id);
    ASSERT_EQ(ca.next, cb.next) << label << " " << to_string(id);
    ASSERT_EQ(ca.token, cb.token) << label << " " << to_string(id);
    ASSERT_EQ(ca.signal, cb.signal) << label << " " << to_string(id);
    ASSERT_EQ(ca.ne_prev, cb.ne_prev) << label << " " << to_string(id);
    ASSERT_EQ(ca.members, cb.members)
        << label << " " << to_string(id) << " round " << round;
  }
}

// The RoundEvents streams must match element-for-element too: observers
// (traces, throughput meters, figure scripts) consume them directly.
void expect_identical_events(const RoundEvents& a, const RoundEvents& b,
                             int round, const std::string& label) {
  ASSERT_EQ(a.round, b.round) << label << " round " << round;
  ASSERT_EQ(a.arrivals, b.arrivals) << label << " round " << round;
  ASSERT_EQ(a.moved, b.moved) << label << " round " << round;
  ASSERT_EQ(a.blocked, b.blocked) << label << " round " << round;
  ASSERT_EQ(a.injected, b.injected) << label << " round " << round;
  ASSERT_EQ(a.transfers.size(), b.transfers.size())
      << label << " round " << round;
  for (std::size_t k = 0; k < a.transfers.size(); ++k) {
    const TransferEvent& ta = a.transfers[k];
    const TransferEvent& tb = b.transfers[k];
    ASSERT_EQ(ta.entity, tb.entity) << label << " round " << round;
    ASSERT_EQ(ta.from, tb.from) << label << " round " << round;
    ASSERT_EQ(ta.to, tb.to) << label << " round " << round;
    ASSERT_EQ(ta.consumed, tb.consumed) << label << " round " << round;
  }
}

struct Scenario {
  std::uint64_t seed;
};

void PrintTo(const Scenario& s, std::ostream* os) { *os << "seed=" << s.seed; }

class ParallelDifferential : public ::testing::TestWithParam<Scenario> {};

TEST_P(ParallelDifferential, BitIdenticalToSerialAtEveryThreadCount) {
  const std::uint64_t seed = GetParam().seed;
  Xoshiro256 rng(seed * 7919 + 13);

  const auto u = [&rng](int n) {
    return static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n)));
  };

  // Random configuration, same envelope as tests/test_differential.cpp.
  const int side = 4 + static_cast<int>(rng.below(5));  // 4..8
  const double l = rng.uniform(0.1, 0.35);
  const double rs = rng.uniform(0.05, std::min(0.4, 0.95 - l));
  const double v = rng.uniform(0.05, l);
  const CellId target{u(side), u(side)};
  std::vector<CellId> sources;
  const std::size_t n_sources = 1 + rng.below(2);
  while (sources.size() < n_sources) {
    const CellId c{u(side), u(side)};
    if (c == target) continue;
    if (std::find(sources.begin(), sources.end(), c) != sources.end())
      continue;
    sources.push_back(c);
  }

  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(l, rs, v);
  cfg.target = target;
  cfg.sources = sources;
  cfg.movement_rule =
      (seed % 2 == 0) ? MovementRule::kCoupled : MovementRule::kCompacting;
  // Every 5th seed runs the UNSAFE always-grant ablation: the engines
  // must agree bit-for-bit even on executions that violate Safe.
  cfg.signal_rule =
      (seed % 5 == 0) ? SignalRule::kAlwaysGrant : SignalRule::kBlocking;
  // Every 7th seed uses the stateful RandomChoose policy, which pins the
  // Signal phase to the serial loop even under kParallel — equality must
  // hold through that path too. Each engine gets its own instance with
  // the same stream seed.
  const bool random_choose = (seed % 7 == 0);
  const auto choose = [&]() -> std::unique_ptr<ChoosePolicy> {
    return random_choose ? make_choose_policy("random", 1000 + seed) : nullptr;
  };

  System serial{cfg, choose()};
  serial.set_parallel_policy(ParallelPolicy::serial());
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<std::unique_ptr<System>> engines;
  for (const int t : thread_counts) {
    engines.push_back(std::make_unique<System>(cfg, choose()));
    engines.back()->set_parallel_policy(ParallelPolicy::parallel(t));
  }

  // Random but identical failure schedule, driven by the serial state.
  for (int round = 0; round < 60; ++round) {
    for (const CellId id : serial.grid().all_cells()) {
      if (serial.cell(id).failed) {
        if (rng.bernoulli(0.05)) {
          serial.recover(id);
          for (auto& e : engines) e->recover(id);
        }
      } else if (rng.bernoulli(0.012)) {
        serial.fail(id);
        for (auto& e : engines) e->fail(id);
      }
    }

    const RoundEvents serial_events = serial.update();
    for (std::size_t k = 0; k < engines.size(); ++k) {
      const RoundEvents& ev = engines[k]->update();
      const std::string label =
          "threads=" + std::to_string(thread_counts[k]);
      expect_bit_identical(serial, *engines[k], round, label);
      expect_identical_events(serial_events, ev, round, label);
    }

    // §III-A oracles, on the serial state and one parallel state. The
    // always-grant ablation violates Safe by design; there only the
    // structural invariant (disjoint Members) is meaningful.
    if (cfg.signal_rule == SignalRule::kBlocking) {
      for (const System* sys : {&serial, engines[1].get()}) {
        const auto violations = check_all(*sys);
        ASSERT_TRUE(violations.empty())
            << "round " << round << ": " << to_string(violations.front());
      }
    } else {
      for (const System* sys : {&serial, engines[1].get()}) {
        const auto violation = check_members_disjoint(*sys);
        ASSERT_FALSE(violation.has_value())
            << "round " << round << ": " << to_string(*violation);
      }
    }
  }
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  for (std::uint64_t s = 1; s <= 48; ++s) out.push_back({s});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDifferential,
                         ::testing::ValuesIn(scenarios()));

// The golden corridor of tests/test_golden_trace.cpp, replayed under the
// parallel engine: the pinned verbatim trace must come out of every
// thread count (ISSUE acceptance: 1, 2, and 8 threads).
TEST(ParallelGoldenTrace, PinnedTraceAtEveryThreadCount) {
  for (const int threads : {1, 2, 8}) {
    SystemConfig cfg;
    cfg.side = 3;
    cfg.params = Params(0.25, 0.25, 0.25);
    cfg.sources = {};
    cfg.target = CellId{2, 0};
    System sys(cfg, nullptr, std::make_unique<NullSource>());
    sys.set_parallel_policy(ParallelPolicy::parallel(threads));
    sys.seed_entity(CellId{0, 0}, Vec2{0.5, 0.5});

    NoFailures none;
    Simulator sim(sys, none);
    TraceRecorder trace;
    sim.add_observer(trace);
    sim.run(12);

    const std::string expected =
        "2 transfer p0 <0,0> -> <1,0>\n"
        "6 consume p0 <1,0> -> <2,0>\n";
    EXPECT_EQ(trace.serialize(), expected) << "threads=" << threads;
    EXPECT_EQ(sys.total_arrivals(), 1u) << "threads=" << threads;
  }
}

// --- active-set scheduler ---------------------------------------------
//
// Three-way differential for the active-set round scheduler: the
// reference exhaustive serial engine vs the active-set serial engine vs
// the active-set parallel engine at 1/2/4/8 threads, with fail/recover
// AND adversarial control-state corruption in the schedule (corruption
// is the hard case: it can plant a signal on an otherwise-empty cell and
// a non-adjacent next on an occupied one, both of which the scheduler's
// re-arm rules must chase). Bit-identical states and events required
// after every round, oracles checked throughout.
class ActiveSetDifferential : public ::testing::TestWithParam<Scenario> {};

TEST_P(ActiveSetDifferential, BitIdenticalToExhaustiveSerial) {
  const std::uint64_t seed = GetParam().seed;
  Xoshiro256 rng(seed * 6151 + 29);

  const auto u = [&rng](int n) {
    return static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n)));
  };

  const int side = 4 + static_cast<int>(rng.below(5));  // 4..8
  const double l = rng.uniform(0.1, 0.35);
  const double rs = rng.uniform(0.05, std::min(0.4, 0.95 - l));
  const double v = rng.uniform(0.05, l);
  const CellId target{u(side), u(side)};
  std::vector<CellId> sources;
  const std::size_t n_sources = 1 + rng.below(2);
  while (sources.size() < n_sources) {
    const CellId c{u(side), u(side)};
    if (c == target) continue;
    if (std::find(sources.begin(), sources.end(), c) != sources.end())
      continue;
    sources.push_back(c);
  }

  SystemConfig cfg;
  cfg.side = side;
  cfg.params = Params(l, rs, v);
  cfg.target = target;
  cfg.sources = sources;
  cfg.movement_rule =
      (seed % 2 == 0) ? MovementRule::kCoupled : MovementRule::kCompacting;
  cfg.signal_rule =
      (seed % 5 == 0) ? SignalRule::kAlwaysGrant : SignalRule::kBlocking;
  const bool random_choose = (seed % 7 == 0);
  const auto choose = [&]() -> std::unique_ptr<ChoosePolicy> {
    return random_choose ? make_choose_policy("random", 2000 + seed) : nullptr;
  };

  System exhaustive{cfg, choose()};
  exhaustive.set_parallel_policy(ParallelPolicy::serial());
  exhaustive.set_round_scheduler(RoundScheduler::kExhaustive);

  // kActiveSet is the construction default; assert rather than set, so a
  // future default change loudly invalidates this suite's premise.
  System active_serial{cfg, choose()};
  active_serial.set_parallel_policy(ParallelPolicy::serial());
  ASSERT_EQ(active_serial.round_scheduler(), RoundScheduler::kActiveSet);

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<std::unique_ptr<System>> engines;
  for (const int t : thread_counts) {
    engines.push_back(std::make_unique<System>(cfg, choose()));
    engines.back()->set_parallel_policy(ParallelPolicy::parallel(t));
  }

  const auto everywhere = [&](const auto& mutate) {
    mutate(exhaustive);
    mutate(active_serial);
    for (auto& e : engines) mutate(*e);
  };

  for (int round = 0; round < 60; ++round) {
    for (const CellId id : exhaustive.grid().all_cells()) {
      if (exhaustive.cell(id).failed) {
        if (rng.bernoulli(0.05))
          everywhere([&](System& s) { s.recover(id); });
      } else if (rng.bernoulli(0.012)) {
        everywhere([&](System& s) { s.fail(id); });
      }
    }
    if (rng.bernoulli(0.08)) {
      const CellId id{u(side), u(side)};
      const auto random_id = [&]() -> OptCellId {
        if (rng.bernoulli(0.3)) return std::nullopt;
        return CellId{u(side), u(side)};
      };
      const Dist dist =
          rng.bernoulli(0.3) ? Dist::infinity() : Dist::finite(rng.below(50));
      const OptCellId next = random_id();
      const OptCellId token = random_id();
      const OptCellId signal = random_id();
      everywhere([&](System& s) {
        s.corrupt_control_state(id, dist, next, token, signal);
      });
    }

    const RoundEvents ref_events = exhaustive.update();
    const RoundEvents serial_events = active_serial.update();
    expect_bit_identical(exhaustive, active_serial, round, "active-serial");
    expect_identical_events(ref_events, serial_events, round, "active-serial");
    for (std::size_t k = 0; k < engines.size(); ++k) {
      const RoundEvents& ev = engines[k]->update();
      const std::string label =
          "active-threads=" + std::to_string(thread_counts[k]);
      expect_bit_identical(exhaustive, *engines[k], round, label);
      expect_identical_events(ref_events, ev, round, label);
    }

    if (cfg.signal_rule == SignalRule::kBlocking) {
      for (const System* sys :
           {&exhaustive, &active_serial, engines[1].get()}) {
        const auto violations = check_all(*sys);
        ASSERT_TRUE(violations.empty())
            << "round " << round << ": " << to_string(violations.front());
      }
    } else {
      const auto violation = check_members_disjoint(active_serial);
      ASSERT_FALSE(violation.has_value())
          << "round " << round << ": " << to_string(*violation);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ActiveSetDifferential,
                         ::testing::ValuesIn(scenarios()));

// Switching schedulers mid-run must be seamless in both directions:
// set_round_scheduler(kActiveSet) rebuilds the stamps/occupancy from the
// current state, so a run that flips back and forth stays bit-identical
// to one that never left kExhaustive.
TEST(ActiveSetScheduler, MidRunToggleIsSeamless) {
  SystemConfig cfg;
  cfg.side = 6;
  cfg.params = Params(0.2, 0.1, 0.1);
  cfg.target = CellId{5, 5};
  cfg.sources = {CellId{0, 0}, CellId{3, 0}};

  System reference{cfg};
  reference.set_round_scheduler(RoundScheduler::kExhaustive);
  System toggled{cfg};

  for (int round = 0; round < 80; ++round) {
    if (round % 17 == 5) toggled.set_round_scheduler(RoundScheduler::kExhaustive);
    if (round % 17 == 11) toggled.set_round_scheduler(RoundScheduler::kActiveSet);
    if (round == 30) {
      reference.fail(CellId{2, 2});
      toggled.fail(CellId{2, 2});
    }
    if (round == 50) {
      reference.recover(CellId{2, 2});
      toggled.recover(CellId{2, 2});
    }
    const RoundEvents ea = reference.update();
    const RoundEvents eb = toggled.update();
    expect_bit_identical(reference, toggled, round, "toggle");
    expect_identical_events(ea, eb, round, "toggle");
  }
  EXPECT_GT(reference.total_arrivals(), 0u);
}

// The point of the scheduler: once routing has stabilized and no entity
// is in flight, every phase's visit count must drop to zero — the system
// is provably quiescent and update() touches no cell at all.
TEST(ActiveSetScheduler, QuiescentSystemVisitsNoCells) {
  SystemConfig cfg;
  cfg.side = 10;
  cfg.params = Params(0.2, 0.1, 0.1);
  cfg.target = CellId{9, 9};
  cfg.sources = {};  // no injections, no entities, ever
  System sys{cfg, nullptr, std::make_unique<NullSource>()};

  for (int round = 0; round < 50; ++round) sys.update();
  const System::SchedulerStats& stats = sys.last_scheduler_stats();
  EXPECT_EQ(stats.route_cells, 0u);
  EXPECT_EQ(stats.signal_cells, 0u);
  EXPECT_EQ(stats.move_cells, 0u);

  // A single perturbation re-arms exactly one neighborhood, then the
  // wave settles back to full quiescence.
  sys.fail(CellId{4, 4});
  sys.update();
  EXPECT_GT(sys.last_scheduler_stats().route_cells, 0u);
  for (int round = 0; round < 60; ++round) sys.update();
  EXPECT_EQ(sys.last_scheduler_stats().route_cells, 0u);
  EXPECT_EQ(sys.last_scheduler_stats().signal_cells, 0u);
  EXPECT_EQ(sys.last_scheduler_stats().move_cells, 0u);

  // Under kExhaustive the same state reports every-cell-every-phase.
  sys.set_round_scheduler(RoundScheduler::kExhaustive);
  sys.update();
  const auto n = static_cast<std::uint64_t>(10 * 10);
  EXPECT_EQ(sys.last_scheduler_stats().route_cells, n);
  EXPECT_EQ(sys.last_scheduler_stats().signal_cells, n);
  EXPECT_EQ(sys.last_scheduler_stats().move_cells, n);
}

// Regression for the latent-nondeterminism fix: canonical_transfer_order
// must map any permutation of the per-cell transfer groups (the degrees
// of freedom an engine's internal iteration order has) back to the
// serial in-order sequence.
TEST(CanonicalOrder, TransferMergeIsIterationOrderInvariant) {
  const Grid grid(5);
  // Serial order: ascending origin-cell index; within a cell, Members
  // (insertion) order. Give some cells multi-entity groups so the
  // within-group order matters.
  std::vector<std::vector<PendingTransfer>> groups;
  std::uint64_t next_id = 0;
  for (const CellId from : grid.all_cells()) {
    if (grid.index_of(from) % 3 != 0) continue;  // sparse, like real rounds
    std::vector<PendingTransfer> group;
    const std::size_t n = 1 + grid.index_of(from) % 2;
    for (std::size_t k = 0; k < n; ++k) {
      group.push_back(PendingTransfer{
          Entity{EntityId{next_id++}, Vec2{0.5, 0.5}}, from,
          CellId{from.i, (from.j + 1) % 5}});
    }
    groups.push_back(std::move(group));
  }
  std::vector<PendingTransfer> serial_order;
  for (const auto& g : groups)
    serial_order.insert(serial_order.end(), g.begin(), g.end());

  Xoshiro256 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    // Permute whole groups (within-group order is the origin cell's
    // Members order, which no engine reorders).
    auto permuted = groups;
    for (std::size_t k = permuted.size(); k > 1; --k)
      std::swap(permuted[k - 1], permuted[rng.below(k)]);
    std::vector<PendingTransfer> flat;
    for (const auto& g : permuted)
      flat.insert(flat.end(), g.begin(), g.end());

    canonical_transfer_order(grid, flat);

    ASSERT_EQ(flat.size(), serial_order.size());
    for (std::size_t k = 0; k < flat.size(); ++k) {
      ASSERT_EQ(flat[k].entity, serial_order[k].entity) << "trial " << trial;
      ASSERT_EQ(flat[k].from, serial_order[k].from) << "trial " << trial;
      ASSERT_EQ(flat[k].to, serial_order[k].to) << "trial " << trial;
    }
  }
}

// Regression for the other iteration-order freedom: the order the caller
// lists sources in must not affect anything — injection order (and hence
// entity-id assignment) is pinned to ascending cell id at construction.
TEST(CanonicalOrder, SourceListOrderIsIrrelevant) {
  SystemConfig fwd;
  fwd.side = 6;
  fwd.params = Params(0.2, 0.05, 0.15);
  fwd.target = CellId{3, 5};
  fwd.sources = {CellId{0, 0}, CellId{2, 1}, CellId{5, 0}};
  SystemConfig rev = fwd;
  rev.sources = {CellId{5, 0}, CellId{0, 0}, CellId{2, 1},
                 CellId{0, 0}};  // duplicate too

  System a{fwd};
  System b{rev};
  a.set_parallel_policy(ParallelPolicy::serial());
  b.set_parallel_policy(ParallelPolicy::serial());

  const std::vector<CellId> canonical = {CellId{0, 0}, CellId{2, 1},
                                         CellId{5, 0}};
  ASSERT_EQ(std::vector<CellId>(a.sources().begin(), a.sources().end()),
            canonical);
  ASSERT_EQ(std::vector<CellId>(b.sources().begin(), b.sources().end()),
            canonical);

  for (int round = 0; round < 150; ++round) {
    const RoundEvents& ea = a.update();
    const RoundEvents& eb = b.update();
    expect_bit_identical(a, b, round, "source-order");
    expect_identical_events(ea, eb, round, "source-order");
  }
  EXPECT_GT(a.total_injected(), 0u);
}

TEST(ParallelPolicyEnv, ParsesValidValuesAndRejectsGarbage) {
  const char* old = std::getenv("CELLFLOW_THREADS");
  const std::string saved = old != nullptr ? old : "";
  const bool had = old != nullptr;

  // The ambient knob opts into the kAuto serial cutover (a throughput
  // default); explicit set_parallel_policy callers still get kNever.
  ASSERT_EQ(setenv("CELLFLOW_THREADS", "3", 1), 0);
  EXPECT_EQ(parallel_policy_from_env(), ParallelPolicy::parallel_auto(3));
  ASSERT_EQ(setenv("CELLFLOW_THREADS", "0", 1), 0);
  EXPECT_EQ(parallel_policy_from_env(), ParallelPolicy::serial());
  ASSERT_EQ(setenv("CELLFLOW_THREADS", "", 1), 0);
  EXPECT_EQ(parallel_policy_from_env(), ParallelPolicy::serial());
  ASSERT_EQ(unsetenv("CELLFLOW_THREADS"), 0);
  EXPECT_EQ(parallel_policy_from_env(), ParallelPolicy::serial());
  for (const char* bad : {"banana", "-2", "3x", "1000000"}) {
    ASSERT_EQ(setenv("CELLFLOW_THREADS", bad, 1), 0);
    EXPECT_THROW(static_cast<void>(parallel_policy_from_env()),
                 std::runtime_error)
        << bad;
  }

  if (had) {
    ASSERT_EQ(setenv("CELLFLOW_THREADS", saved.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("CELLFLOW_THREADS"), 0);
  }
}

TEST(ParallelPolicy, SetPolicyValidatesThreadCount) {
  System sys{SystemConfig{}};
  EXPECT_THROW(sys.set_parallel_policy(ParallelPolicy::parallel(0)),
               ContractViolation);
  // Same bound as CELLFLOW_THREADS — a typo'd CLI flag cannot spawn a
  // runaway number of workers.
  EXPECT_THROW(sys.set_parallel_policy(ParallelPolicy::parallel(100000)),
               ContractViolation);
  sys.set_parallel_policy(ParallelPolicy::parallel(2));
  EXPECT_EQ(sys.parallel_policy(), ParallelPolicy::parallel(2));
  sys.set_parallel_policy(ParallelPolicy::serial());
  EXPECT_EQ(sys.parallel_policy(), ParallelPolicy::serial());
}

}  // namespace
}  // namespace cellflow
