// Differential fuzzing between three realizations of the protocol: the
// shared-variable System (§II model) on the serial engine, the same
// System on the sharded parallel engine (bit-exact comparison), and the
// MessageSystem (§II-B implementation), across randomized configurations
// and failure schedules. Any divergence in any reachable state is a
// modeling or engine bug.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/system.hpp"
#include "msg/msg_system.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

struct FuzzCase {
  std::uint64_t seed;
};

void PrintTo(const FuzzCase& c, std::ostream* os) { *os << "seed=" << c.seed; }

class Differential : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(Differential, SharedVariableAndMessagePassingAgree) {
  Xoshiro256 rng(GetParam().seed);

  // Random configuration.
  const int side = 4 + static_cast<int>(rng.below(4));  // 4..7
  const double l = rng.uniform(0.1, 0.35);
  const double rs = rng.uniform(0.05, std::min(0.4, 0.95 - l));
  const double v = rng.uniform(0.05, l);
  const CellId target{static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(side))),
                      static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(side)))};
  CellId source = target;
  while (source == target) {
    source = CellId{static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(side))),
                    static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(side)))};
  }

  SystemConfig sc;
  sc.side = side;
  sc.params = Params(l, rs, v);
  sc.target = target;
  sc.sources = {source};
  System shared{sc};
  shared.set_parallel_policy(ParallelPolicy::serial());

  // Third realization: the same automaton on the sharded parallel engine
  // (thread count varied by seed). Unlike the message-passing leg, this
  // one is compared bit-exactly, members in insertion order.
  System par{sc};
  par.set_parallel_policy(
      ParallelPolicy::parallel(1 + static_cast<int>(GetParam().seed % 8)));

  MsgSystemConfig mc;
  mc.side = side;
  mc.params = Params(l, rs, v);
  mc.target = target;
  mc.sources = {source};
  MessageSystem msg{mc};

  // Random but identical failure schedule driven by the same stream.
  for (int round = 0; round < 400; ++round) {
    for (const CellId id : shared.grid().all_cells()) {
      const bool failed = shared.cell(id).failed;
      if (failed) {
        if (rng.bernoulli(0.05)) {
          shared.recover(id);
          par.recover(id);
          msg.recover(id);
        }
      } else if (rng.bernoulli(0.01)) {
        shared.fail(id);
        par.fail(id);
        msg.fail(id);
      }
    }
    shared.update();
    par.update();
    msg.update();

    ASSERT_EQ(shared.total_arrivals(), msg.total_arrivals())
        << "round " << round;
    ASSERT_EQ(shared.total_injected(), msg.total_injected())
        << "round " << round;
    ASSERT_EQ(shared.total_arrivals(), par.total_arrivals())
        << "round " << round;
    ASSERT_EQ(shared.total_injected(), par.total_injected())
        << "round " << round;
    for (const CellId id : shared.grid().all_cells()) {
      const CellState& sa = shared.cell(id);
      const CellState& sp = par.cell(id);
      ASSERT_EQ(sa.dist, sp.dist) << to_string(id) << " round " << round;
      ASSERT_EQ(sa.next, sp.next) << to_string(id) << " round " << round;
      ASSERT_EQ(sa.token, sp.token) << to_string(id) << " round " << round;
      ASSERT_EQ(sa.signal, sp.signal) << to_string(id) << " round " << round;
      ASSERT_EQ(sa.members, sp.members)
          << to_string(id) << " round " << round;
    }
    for (const CellId id : shared.grid().all_cells()) {
      const CellState& a = shared.cell(id);
      const CellState& b = msg.cell(id);
      ASSERT_EQ(a.dist, b.dist) << to_string(id) << " round " << round;
      ASSERT_EQ(a.next, b.next) << to_string(id) << " round " << round;
      ASSERT_EQ(a.signal, b.signal) << to_string(id) << " round " << round;
      ASSERT_EQ(a.members.size(), b.members.size())
          << to_string(id) << " round " << round;
      auto sa = a.members;
      auto sb = b.members;
      const auto by_id = [](const Entity& x, const Entity& y) {
        return x.id < y.id;
      };
      std::sort(sa.begin(), sa.end(), by_id);
      std::sort(sb.begin(), sb.end(), by_id);
      ASSERT_EQ(sa, sb) << to_string(id) << " round " << round;
    }
  }
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t s = 1; s <= 12; ++s) cases.push_back({s});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::ValuesIn(fuzz_cases()));

}  // namespace
}  // namespace cellflow
