// Unit tests for the Route function (Figure 4): synchronous distance-
// vector update with saturating ∞ and id tie-breaking.
#include "core/route.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace cellflow {
namespace {

RouteResult run(std::vector<NeighborDist> nds) {
  return route_step(nds);
}

TEST(Route, PicksUniqueMinimumNeighbor) {
  const auto r = run({{CellId{0, 1}, Dist::finite(5)},
                      {CellId{2, 1}, Dist::finite(3)},
                      {CellId{1, 0}, Dist::finite(7)},
                      {CellId{1, 2}, Dist::finite(4)}});
  EXPECT_EQ(r.dist, Dist::finite(4));
  EXPECT_EQ(r.next, OptCellId(CellId{2, 1}));
}

TEST(Route, AdjacentToTargetGetsDistOne) {
  const auto r = run({{CellId{2, 2}, Dist::zero()},
                      {CellId{0, 2}, Dist::infinity()}});
  EXPECT_EQ(r.dist, Dist::finite(1));
  EXPECT_EQ(r.next, OptCellId(CellId{2, 2}));
}

TEST(Route, TieBrokenByLowestId) {
  // Both neighbors claim distance 2; ⟨0,1⟩ < ⟨1,0⟩ lexicographically.
  const auto r = run({{CellId{1, 0}, Dist::finite(2)},
                      {CellId{0, 1}, Dist::finite(2)}});
  EXPECT_EQ(r.dist, Dist::finite(3));
  EXPECT_EQ(r.next, OptCellId(CellId{0, 1}));
}

TEST(Route, TieBreakIndependentOfInputOrder) {
  const std::vector<NeighborDist> a = {{CellId{1, 0}, Dist::finite(2)},
                                       {CellId{0, 1}, Dist::finite(2)},
                                       {CellId{1, 2}, Dist::finite(2)},
                                       {CellId{2, 1}, Dist::finite(2)}};
  std::vector<NeighborDist> b(a.rbegin(), a.rend());
  EXPECT_EQ(run(a).next, run(b).next);
  EXPECT_EQ(run(a).next, OptCellId(CellId{0, 1}));
}

TEST(Route, AllNeighborsInfiniteGivesBottomNext) {
  const auto r = run({{CellId{0, 1}, Dist::infinity()},
                      {CellId{2, 1}, Dist::infinity()},
                      {CellId{1, 0}, Dist::infinity()}});
  EXPECT_TRUE(r.dist.is_infinite());
  EXPECT_EQ(r.next, OptCellId{});
}

TEST(Route, MixedInfinityIgnoredWhenFiniteExists) {
  const auto r = run({{CellId{0, 1}, Dist::infinity()},
                      {CellId{2, 1}, Dist::finite(9)}});
  EXPECT_EQ(r.dist, Dist::finite(10));
  EXPECT_EQ(r.next, OptCellId(CellId{2, 1}));
}

TEST(Route, EmptyNeighborhoodViolatesContract) {
  EXPECT_THROW((void)route_step({}), ContractViolation);
}

TEST(Route, SingleNeighbor) {
  const auto r = run({{CellId{0, 0}, Dist::finite(0)}});
  EXPECT_EQ(r.dist, Dist::finite(1));
  EXPECT_EQ(r.next, OptCellId(CellId{0, 0}));
}

// Synchronous-iteration property: iterating route_step on a line of cells
// converges to exact hop counts in (length − 1) rounds — the per-cell
// essence of Lemma 6.
TEST(Route, LineConvergesInLengthRounds) {
  constexpr int kLen = 10;  // cells 0..9, target at 0 with dist 0
  std::vector<Dist> dist(kLen, Dist::infinity());
  dist[0] = Dist::zero();
  for (int round = 0; round < kLen - 1; ++round) {
    std::vector<Dist> prev = dist;
    for (int c = 1; c < kLen; ++c) {
      std::vector<NeighborDist> nds;
      nds.push_back({CellId{c - 1, 0}, prev[static_cast<std::size_t>(c - 1)]});
      if (c + 1 < kLen)
        nds.push_back({CellId{c + 1, 0}, prev[static_cast<std::size_t>(c + 1)]});
      dist[static_cast<std::size_t>(c)] = route_step(nds).dist;
    }
  }
  for (int c = 0; c < kLen; ++c)
    EXPECT_EQ(dist[static_cast<std::size_t>(c)],
              Dist::finite(static_cast<std::uint64_t>(c)));
}

// Stale-value washout: a cell whose neighbors all report values *larger*
// than its own corrupted-small dist adopts min+1, so corrupted low
// estimates rise by at least one per round until they match reality —
// this is the count-to-correct mechanism behind self-stabilization.
TEST(Route, CorruptedLowEstimateRises) {
  // Two cells each seeing only the other, both starting (wrongly) at 1.
  Dist a = Dist::finite(1);
  Dist b = Dist::finite(1);
  for (int round = 1; round <= 5; ++round) {
    const Dist na = route_step({{{CellId{1, 0}, b}}}).dist;
    const Dist nb = route_step({{{CellId{0, 0}, a}}}).dist;
    a = na;
    b = nb;
    EXPECT_EQ(a, Dist::finite(static_cast<std::uint64_t>(1 + round)));
  }
}

}  // namespace
}  // namespace cellflow
