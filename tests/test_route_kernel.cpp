// Equivalence of core/route_kernel.hpp's packed-key argmin with the
// reference route_step (core/route.hpp) — including ∞ neighbors, ties
// (which route_step breaks by neighbor id), zero distances, and the
// huge-raw guard band. The kernel only ever runs on interior cells of
// the dense grid, so the oracle below builds exactly that geometry.
#include "core/route_kernel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "core/route.hpp"
#include "grid/grid.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

// Decodes a packed key the way System's fast path does.
RouteResult decode(std::uint64_t key, const Grid& grid, CellId cell) {
  if (key == kRouteKeyNone) return RouteResult{Dist::infinity(), std::nullopt};
  // Id-rank order of the four lattice neighbors: W < S < N < E.
  static constexpr std::array<std::pair<int, int>, 4> kRankStep = {
      {{-1, 0}, {0, -1}, {0, 1}, {1, 0}}};
  const auto [di, dj] = kRankStep[key & 3];
  const CellId next{cell.i + di, cell.j + dj};
  (void)grid;
  return RouteResult{Dist::finite((key >> 2) + 1), next};
}

RouteResult oracle(const Grid& grid, const std::vector<Dist>& dist,
                   CellId cell) {
  std::vector<NeighborDist> nds;
  for (const Direction d : kAllDirections) {
    const auto nb = grid.neighbor(cell, d);
    if (!nb) continue;
    nds.push_back(NeighborDist{*nb, dist[grid.index_of(*nb)]});
  }
  return route_step(nds);
}

TEST(RouteKernel, MatchesRouteStepOnRandomFields) {
  const int side = 13;
  const Grid grid(side);
  Xoshiro256 rng(0xC0FFEEu);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Dist> dist(static_cast<std::size_t>(side * side));
    std::vector<std::uint64_t> raw(dist.size());
    for (std::size_t k = 0; k < dist.size(); ++k) {
      const std::uint64_t r = rng();
      // Mix infinities, small values (forcing ties), and larger ones.
      if ((r & 7) == 0) {
        dist[k] = Dist::infinity();
      } else {
        dist[k] = Dist::finite((r >> 3) % 5);
      }
      raw[k] = dist[k].raw();
    }
    for (int j = 1; j < side - 1; ++j) {
      const std::size_t row =
          static_cast<std::size_t>(j) * static_cast<std::size_t>(side) + 1;
      const std::size_t n = static_cast<std::size_t>(side) - 2;
      std::vector<std::uint64_t> keys(n);
      route_min_keys_interior(raw.data(), row, n, static_cast<std::size_t>(side),
                              keys.data());
      for (std::size_t i = 0; i < n; ++i) {
        const CellId cell{static_cast<std::int32_t>(i) + 1, j};
        const RouteResult got = decode(keys[i], grid, cell);
        const RouteResult want = oracle(grid, dist, cell);
        ASSERT_EQ(got.dist, want.dist) << "cell " << cell.i << "," << cell.j;
        ASSERT_EQ(got.next, want.next) << "cell " << cell.i << "," << cell.j;
      }
    }
  }
}

TEST(RouteKernel, HugeRawsPackToNone) {
  // Raws at/above the guard band (only reachable via adversarial state
  // corruption) must not produce a finite key — System falls back to
  // route_step for exactness there, but the kernel must stay safe.
  EXPECT_EQ(route_pack_key(kRouteHugeDist, 0), kRouteKeyNone);
  EXPECT_EQ(route_pack_key(~0ull, 3), kRouteKeyNone);
  EXPECT_EQ(route_pack_key(kRouteHugeDist - 1, 3),
            ((kRouteHugeDist - 1) << 2) | 3u);
}

TEST(RouteKernel, ScalarAndDispatchedBodiesAgree) {
  // On AVX2 hardware this pins SIMD == scalar lane-for-lane; elsewhere
  // both sides are the scalar body and the test is vacuous but valid.
  const std::size_t side = 16;
  Xoshiro256 rng(7);
  std::vector<std::uint64_t> raw(side * side);
  for (auto& r : raw) {
    const std::uint64_t v = rng();
    r = ((v & 3) == 0) ? ~0ull : ((v & 3) == 1) ? (v >> 2) : (v % 9);
  }
  for (std::size_t j = 1; j + 1 < side; ++j) {
    const std::size_t row = j * side + 1;
    const std::size_t n = side - 2;
    std::vector<std::uint64_t> a(n), b(n);
    route_min_keys_interior(raw.data(), row, n, side, a.data());
    detail::route_min_keys_interior_scalar(raw.data(), row, n, side, b.data());
    EXPECT_EQ(a, b) << "row " << j;
  }
}

}  // namespace
}  // namespace cellflow
