// Shared helpers for the cellflow test suite.
#pragma once

#include <memory>
#include <vector>

#include "core/choose.hpp"
#include "core/source.hpp"
#include "core/system.hpp"
#include "grid/path.hpp"

namespace cellflow::testing {

/// A small System on an N×N grid with source bottom-of-column-1 and target
/// top-of-column-1 (the Figure 7 geometry scaled to `side`).
inline System make_column_system(int side, Params params,
                                 std::unique_ptr<ChoosePolicy> choose = nullptr,
                                 std::unique_ptr<SourcePolicy> source = nullptr) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = params;
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, side - 1};
  return System(std::move(cfg), std::move(choose), std::move(source));
}

/// A System with no sources at all (entities only via seed_entity).
inline System make_closed_system(int side, Params params, CellId target,
                                 std::unique_ptr<ChoosePolicy> choose = nullptr) {
  SystemConfig cfg;
  cfg.side = side;
  cfg.params = params;
  cfg.sources = {};
  cfg.target = target;
  return System(std::move(cfg), std::move(choose),
                std::make_unique<NullSource>());
}

/// Runs `rounds` updates.
inline void run_rounds(System& sys, std::uint64_t rounds) {
  for (std::uint64_t k = 0; k < rounds; ++k) sys.update();
}

/// Runs updates until routing has stabilized (dist finite on every
/// target-connected cell and equal to the BFS reference) or max rounds.
inline bool run_until_routed(System& sys, std::uint64_t max_rounds) {
  for (std::uint64_t k = 0; k < max_rounds; ++k) {
    sys.update();
    const auto rho = sys.reference_distances();
    bool ok = true;
    for (const CellId id : sys.grid().all_cells()) {
      const Dist expect = rho[sys.grid().index_of(id)];
      if (expect.is_finite() && sys.cell(id).dist != expect) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

}  // namespace cellflow::testing
