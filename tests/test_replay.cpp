// Record-replay + divergence-bisection tests (DESIGN.md §11). A 500-round
// stochastic run (random choose, rate-limited source, fail/recover churn)
// is recorded once: the ReplayLog captures the environment event stream
// and a digest at every round boundary, and snapshots are taken at five
// interior boundaries. Pinned here:
//   * the log round-trips through its wire form byte-identically;
//   * replaying from round 0 or from ANY of the five snapshots tracks the
//     recording exactly (no divergence, injection trace consistent);
//   * a deliberate note_corrupt() perturbation is part of the recorded
//     inputs, so replay reproduces it;
//   * the bisection contract — restore a snapshot whose bytes were
//     perturbed by ONE BIT (a member-center mantissa flip, checksum
//     refixed), replay, and first_divergence names exactly the snapshot's
//     round, not some later smear;
//   * adversarial replay-log bytes fail with typed SnapshotErrors.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/choose.hpp"
#include "core/source.hpp"
#include "core/system.hpp"
#include "failure/failure_model.hpp"
#include "snapshot/replay.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/wire.hpp"
#include "util/rng.hpp"

namespace cellflow {
namespace {

using snapshot::Errc;
using snapshot::ReplayEvent;
using snapshot::ReplayLog;
using snapshot::SnapshotError;

constexpr std::uint64_t kRounds = 500;
constexpr std::uint64_t kSnapRounds[] = {50, 150, 250, 350, 450};

SystemConfig config() {
  SystemConfig cfg;
  cfg.side = 5;
  cfg.params = Params(0.25, 0.05, 0.1);
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 4};
  return cfg;
}

struct Engine {
  std::unique_ptr<System> sys;
  std::unique_ptr<FailureModel> failures;
};

/// Rebuilding with the same literals is the "process-equivalent engine"
/// a snapshot restores into.
Engine build() {
  Engine e;
  e.sys = std::make_unique<System>(
      config(), make_choose_policy("random", 0xC0FFEE),
      std::make_unique<RateLimitedSource>(0.8, 0xBEEF));
  e.failures = std::make_unique<RandomFailRecover>(0.01, 0.1, 0xFA11);
  return e;
}

struct Recording {
  ReplayLog log;
  std::vector<std::vector<std::uint8_t>> snaps;  // parallel to kSnapRounds
  double probe_x = 0.0;  ///< a member center.x live at the round-250 snap
  bool probe_found = false;
};

const Recording& recording() {
  static const Recording rec = [] {
    Recording out;
    Engine e = build();
    snapshot::RunRecorder r(*e.sys, e.failures.get());
    while (e.sys->round() < kRounds) {
      for (const std::uint64_t sr : kSnapRounds) {
        if (e.sys->round() != sr) continue;
        out.snaps.push_back(snapshot::save(*e.sys, e.failures.get()));
        if (sr == 250 && !out.probe_found) {
          for (const CellState& c : e.sys->cells()) {
            if (c.members.empty()) continue;
            out.probe_x = c.members.front().center.x;
            out.probe_found = true;
            break;
          }
        }
      }
      r.step();
    }
    out.log = r.log();
    return out;
  }();
  return rec;
}

/// Strips and recomputes the trailing checksum after a byte surgery.
std::vector<std::uint8_t> refix_checksum(std::vector<std::uint8_t> b) {
  b.resize(b.size() - 8);
  const std::uint64_t c =
      snapshot::fnv1a(std::span<const std::uint8_t>(b.data(), b.size()));
  for (int k = 0; k < 8; ++k) {
    b.push_back(static_cast<std::uint8_t>((c >> (8 * k)) & 0xFFu));
  }
  return b;
}

/// Walks the section headers and returns the payload offset of `want`
/// (and its length): lets tests do targeted byte surgery.
std::size_t section_payload_offset(const std::vector<std::uint8_t>& bytes,
                                   std::uint32_t want,
                                   std::uint64_t* len_out = nullptr) {
  std::size_t at = 8;
  for (;;) {
    const auto tag = static_cast<std::uint32_t>(
        static_cast<std::uint32_t>(bytes[at]) |
        (static_cast<std::uint32_t>(bytes[at + 1]) << 8) |
        (static_cast<std::uint32_t>(bytes[at + 2]) << 16) |
        (static_cast<std::uint32_t>(bytes[at + 3]) << 24));
    std::uint64_t len = 0;
    for (std::size_t k = 0; k < 8; ++k) {
      len |= static_cast<std::uint64_t>(bytes[at + 4 + k]) << (8 * k);
    }
    if (tag == want) {
      if (len_out != nullptr) *len_out = len;
      return at + 12;
    }
    at += 12 + static_cast<std::size_t>(len);
  }
}

TEST(Replay, RecordingCoversTheRun) {
  const Recording& rec = recording();
  EXPECT_EQ(rec.log.start_round, 0u);
  EXPECT_EQ(rec.log.digests.size(), kRounds);
  EXPECT_EQ(rec.log.end_round(), kRounds);
  ASSERT_EQ(rec.snaps.size(), std::size(kSnapRounds));
  // pf=0.01 over 500 rounds × 25 cells: fail/recover churn must show up,
  // and a 0.8-rate source must have injected.
  bool saw_fail = false, saw_inject = false;
  for (const ReplayEvent& e : rec.log.events) {
    saw_fail |= e.kind == ReplayEvent::Kind::kFail;
    saw_inject |= e.kind == ReplayEvent::Kind::kInject;
  }
  EXPECT_TRUE(saw_fail);
  EXPECT_TRUE(saw_inject);
}

TEST(Replay, LogRoundTripsThroughBytesExactly) {
  const Recording& rec = recording();
  const auto bytes = rec.log.to_bytes();
  const ReplayLog parsed = ReplayLog::from_bytes(bytes);
  EXPECT_EQ(parsed.start_round, rec.log.start_round);
  EXPECT_EQ(parsed.start_digest, rec.log.start_digest);
  EXPECT_EQ(parsed.digests, rec.log.digests);
  EXPECT_EQ(parsed.events.size(), rec.log.events.size());
  // Byte stability subsumes field-by-field event equality.
  EXPECT_EQ(parsed.to_bytes(), bytes);
}

TEST(Replay, FromFreshEngineTracksRecordingExactly) {
  const Recording& rec = recording();
  Engine e = build();
  const snapshot::ReplayReport rep = snapshot::replay(*e.sys, rec.log);
  EXPECT_EQ(rep.rounds_replayed, kRounds);
  EXPECT_FALSE(rep.first_divergence.has_value());
  EXPECT_TRUE(rep.inputs_consistent);
  EXPECT_EQ(snapshot::state_digest(*e.sys), rec.log.digests.back());
}

TEST(Replay, FromEverySnapshotTracksRecordingExactly) {
  const Recording& rec = recording();
  for (std::size_t n = 0; n < std::size(kSnapRounds); ++n) {
    Engine e = build();
    snapshot::restore(*e.sys, rec.snaps[n], e.failures.get());
    ASSERT_EQ(e.sys->round(), kSnapRounds[n]);
    const snapshot::ReplayReport rep = snapshot::replay(*e.sys, rec.log);
    EXPECT_EQ(rep.rounds_replayed, kRounds - kSnapRounds[n])
        << "snapshot at round " << kSnapRounds[n];
    EXPECT_FALSE(rep.first_divergence.has_value())
        << "snapshot at round " << kSnapRounds[n] << " diverged at "
        << *rep.first_divergence;
    EXPECT_TRUE(rep.inputs_consistent);
    EXPECT_EQ(snapshot::state_digest(*e.sys), rec.log.digests.back());
  }
}

TEST(Replay, NoteCorruptIsRecordedAndReplayed) {
  Engine a = build();
  snapshot::RunRecorder r(*a.sys, a.failures.get());
  for (int k = 0; k < 20; ++k) r.step();
  // A §V-style adversarial perturbation: cell (2,2)'s control state is
  // overwritten at the round-20 boundary. Recording it makes it an input.
  r.note_corrupt(CellId{2, 2}, Dist::finite(7), CellId{2, 3}, std::nullopt,
                 std::nullopt);
  for (int k = 0; k < 20; ++k) r.step();

  bool saw_corrupt = false;
  for (const ReplayEvent& e : r.log().events) {
    if (e.kind == ReplayEvent::Kind::kCorrupt) {
      saw_corrupt = true;
      EXPECT_EQ(e.round, 20u);
      EXPECT_EQ(e.cell, (CellId{2, 2}));
    }
  }
  EXPECT_TRUE(saw_corrupt);

  Engine b = build();
  const snapshot::ReplayReport rep = snapshot::replay(*b.sys, r.log());
  EXPECT_EQ(rep.rounds_replayed, 40u);
  EXPECT_FALSE(rep.first_divergence.has_value());
  EXPECT_TRUE(rep.inputs_consistent);
}

// The headline bisection contract: a single flipped mantissa bit in a
// snapshot's cell payload must be localized by replay to EXACTLY the
// snapshot's round — the first boundary whose digest can see it.
TEST(Replay, PerturbedSnapshotBisectsToExactRound) {
  const Recording& rec = recording();
  ASSERT_TRUE(rec.probe_found)
      << "no entity in flight at round 250 — widen the recording";
  std::vector<std::uint8_t> bytes = rec.snaps[2];  // round 250

  // Surgical strike: find the probe entity's center.x inside the CELLS
  // section (tag 3) only — a hit elsewhere (e.g. rng words) would not be
  // covered by the boundary digest and would smear the divergence.
  std::uint64_t cells_len = 0;
  const std::size_t cells_at = section_payload_offset(bytes, 3, &cells_len);
  const std::uint64_t pattern = std::bit_cast<std::uint64_t>(rec.probe_x);
  std::optional<std::size_t> hit;
  for (std::size_t at = cells_at;
       at + 8 <= cells_at + static_cast<std::size_t>(cells_len); ++at) {
    std::uint64_t v = 0;
    for (std::size_t k = 0; k < 8; ++k) {
      v |= static_cast<std::uint64_t>(bytes[at + k]) << (8 * k);
    }
    if (v == pattern) {
      hit = at;
      break;
    }
  }
  ASSERT_TRUE(hit.has_value()) << "probe center.x not found in cells section";
  bytes[*hit] ^= 0x01;  // least significant mantissa bit
  bytes = refix_checksum(bytes);

  Engine e = build();
  snapshot::restore(*e.sys, bytes, e.failures.get());  // well-formed bytes
  ASSERT_EQ(e.sys->round(), 250u);
  ASSERT_NE(snapshot::state_digest(*e.sys), rec.log.digests[249])
      << "perturbation was not digest-visible";

  const snapshot::ReplayReport rep = snapshot::replay(*e.sys, rec.log);
  EXPECT_EQ(rep.rounds_replayed, kRounds - 250);
  ASSERT_TRUE(rep.first_divergence.has_value());
  EXPECT_EQ(*rep.first_divergence, 250u);
}

TEST(ReplayFormat, AdversarialBytesFailTyped) {
  const Recording& rec = recording();
  const auto bytes = rec.log.to_bytes();

  // Truncations and a payload bit flip.
  for (const std::size_t len : {std::size_t{0}, std::size_t{3},
                                std::size_t{15}, bytes.size() / 2}) {
    const std::vector<std::uint8_t> prefix(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)ReplayLog::from_bytes(prefix), SnapshotError);
  }
  {
    auto flipped = bytes;
    flipped[bytes.size() / 2] ^= 0x10;
    try {
      (void)ReplayLog::from_bytes(flipped);
      FAIL();
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.code(), Errc::kChecksumMismatch);
    }
  }

  // A snapshot is not a replay log.
  Engine e = build();
  try {
    (void)ReplayLog::from_bytes(snapshot::save(*e.sys));
    FAIL();
  } catch (const SnapshotError& err) {
    EXPECT_EQ(err.code(), Errc::kBadMagic);
  }
}

TEST(ReplayFormat, OutOfOrderEventsRejected) {
  ReplayLog bad;
  bad.digests = {1, 2, 3, 4, 5, 6};
  ReplayEvent e1;
  e1.kind = ReplayEvent::Kind::kFail;
  e1.round = 5;
  e1.cell = CellId{0, 0};
  ReplayEvent e2 = e1;
  e2.round = 3;  // decreasing
  bad.events = {e1, e2};
  try {
    (void)ReplayLog::from_bytes(bad.to_bytes());
    FAIL();
  } catch (const SnapshotError& err) {
    EXPECT_EQ(err.code(), Errc::kMalformed);
  }
}

TEST(ReplayFormat, EventBeforeStartRoundRejected) {
  ReplayLog bad;
  bad.start_round = 10;
  bad.digests = {1, 2};
  ReplayEvent e;
  e.kind = ReplayEvent::Kind::kRecover;
  e.round = 5;  // before the log's first boundary
  e.cell = CellId{0, 0};
  bad.events = {e};
  try {
    (void)ReplayLog::from_bytes(bad.to_bytes());
    FAIL();
  } catch (const SnapshotError& err) {
    EXPECT_EQ(err.code(), Errc::kMalformed);
  }
}

TEST(ReplayFormat, BadEventKindByteRejected) {
  ReplayLog log;
  log.digests = {42};
  ReplayEvent e;
  e.kind = ReplayEvent::Kind::kFail;
  e.round = 0;
  e.cell = CellId{1, 1};
  log.events = {e};
  auto bytes = log.to_bytes();
  const std::size_t events_at = section_payload_offset(bytes, 2);
  bytes[events_at + 8] = 9;  // kind byte follows the u64 event count
  bytes = refix_checksum(bytes);
  try {
    (void)ReplayLog::from_bytes(bytes);
    FAIL();
  } catch (const SnapshotError& err) {
    EXPECT_EQ(err.code(), Errc::kMalformed);
  }
}

}  // namespace
}  // namespace cellflow
