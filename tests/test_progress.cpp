// Tests for Theorem 10 (progress): every entity on a target-connected
// cell eventually reaches the target once failures cease — on straight
// paths, turning paths, under congestion, and after transient failures.
#include <gtest/gtest.h>

#include "core/choose.hpp"
#include "core/predicates.hpp"
#include "failure/failure_model.hpp"
#include "grid/path.hpp"
#include "helpers.hpp"
#include "sim/observers.hpp"
#include "sim/simulator.hpp"

namespace cellflow {
namespace {

const Params kP(0.2, 0.1, 0.1);

TEST(Progress, SingleEntityStraightPath) {
  System sys = testing::make_closed_system(8, kP, CellId{1, 7});
  sys.seed_entity(CellId{1, 0}, Vec2{1.5, 0.1});
  std::uint64_t rounds = 0;
  while (sys.total_arrivals() < 1 && rounds < 2000) {
    sys.update();
    ++rounds;
  }
  EXPECT_EQ(sys.total_arrivals(), 1u);
}

// Theorem 10 on carved turning paths: an entity seeded at the source of a
// length-8 path with T turns arrives for every T.
class ProgressOnTurningPaths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ProgressOnTurningPaths, EntityArrives) {
  const Grid grid(8);
  const Path path = make_turning_path(grid, CellId{0, 0}, Direction::kNorth,
                                      Direction::kEast, 8, GetParam());
  SystemConfig cfg;
  cfg.side = 8;
  cfg.params = kP;
  cfg.sources = {};
  cfg.target = path.target();
  System sys(cfg, nullptr, std::make_unique<NullSource>());
  carve_path(sys, path);
  sys.seed_entity(path.source(),
                  Vec2{path.source().i + 0.5, path.source().j + 0.5});

  std::uint64_t rounds = 0;
  while (sys.total_arrivals() < 1 && rounds < 3000) {
    sys.update();
    ++rounds;
  }
  EXPECT_EQ(sys.total_arrivals(), 1u) << "turns=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Turns, ProgressOnTurningPaths,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u));

TEST(Progress, ManyEntitiesAllArriveFIFOPressure) {
  // Saturating source with a finite budget: every injected entity must
  // eventually arrive (closed-population progress).
  SystemConfig cfg;
  cfg.side = 6;
  cfg.params = kP;
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 5};
  auto source = std::make_unique<BoundedSource>(25);
  System sys(cfg, nullptr, std::move(source));

  NoFailures none;
  Simulator sim(sys, none);
  SafetyMonitor safety;
  sim.add_observer(safety);
  const bool done = sim.run_until(
      [](const System& s) {
        return s.total_arrivals() == 25 && s.entity_count() == 0;
      },
      20000);
  EXPECT_TRUE(done);
  EXPECT_TRUE(safety.clean()) << safety.report();
  EXPECT_EQ(sys.total_injected(), 25u);
}

TEST(Progress, ResumesAfterTransientBlockingFailure) {
  // An entity mid-path; the cell ahead fails, then recovers. The entity
  // must still arrive (self-stabilization of progress).
  System sys = testing::make_closed_system(6, kP, CellId{1, 5});
  // Carve the column so rerouting around the failure is impossible —
  // progress must wait for recovery.
  const Path column(sys.grid(), {{1, 0}, {1, 1}, {1, 2}, {1, 3}, {1, 4}, {1, 5}});
  carve_path(sys, column);
  const EntityId e = sys.seed_entity(CellId{1, 1}, Vec2{1.5, 1.5});

  sys.fail(CellId{1, 3});
  testing::run_rounds(sys, 200);
  EXPECT_EQ(sys.total_arrivals(), 0u);  // walled in
  // The entity is parked somewhere in column 1, rows 1–2.
  bool found = false;
  for (int j = 1; j <= 2; ++j)
    if (sys.cell(CellId{1, j}).find(e) != nullptr) found = true;
  EXPECT_TRUE(found);

  sys.recover(CellId{1, 3});
  std::uint64_t rounds = 0;
  while (sys.total_arrivals() < 1 && rounds < 2000) {
    sys.update();
    ++rounds;
  }
  EXPECT_EQ(sys.total_arrivals(), 1u);
}

TEST(Progress, ReroutesAroundPermanentFailure) {
  // Full grid alive; a cell on the natural path fails permanently —
  // entities reroute and still arrive (hi,j ∈ TC via another path).
  System sys = testing::make_closed_system(6, kP, CellId{1, 5});
  testing::run_rounds(sys, 12);  // routing settles
  sys.seed_entity(CellId{1, 0}, Vec2{1.5, 0.1});
  sys.fail(CellId{1, 3});
  std::uint64_t rounds = 0;
  while (sys.total_arrivals() < 1 && rounds < 3000) {
    sys.update();
    ++rounds;
  }
  EXPECT_EQ(sys.total_arrivals(), 1u);
}

TEST(Progress, EntitiesOnDisconnectedCellStayPut) {
  // The complement of progress: a cell cut off from the target (not in
  // TC) keeps its entities forever — and stays safe.
  System sys = testing::make_closed_system(4, kP, CellId{0, 3});
  // Wall the east half off.
  for (int j = 0; j < 4; ++j) sys.fail(CellId{2, j});
  const EntityId e = sys.seed_entity(CellId{3, 1}, Vec2{3.5, 1.5});
  testing::run_rounds(sys, 300);
  EXPECT_EQ(sys.total_arrivals(), 0u);
  EXPECT_NE(sys.cell(CellId{3, 1}).find(e), nullptr);
  EXPECT_FALSE(check_safe(sys).has_value());
}

TEST(Progress, LatencyScalesWithPathLength) {
  // Entities on longer carved columns take proportionally longer.
  std::vector<double> latencies;
  for (const int len : {3, 6, 9, 12}) {
    SystemConfig cfg;
    cfg.side = 12;
    cfg.params = kP;
    cfg.sources = {};
    cfg.target = CellId{0, len - 1};
    System sys(cfg, nullptr, std::make_unique<NullSource>());
    const Path column =
        make_straight_path(sys.grid(), CellId{0, 0}, Direction::kNorth,
                           static_cast<std::size_t>(len));
    carve_path(sys, column);
    sys.seed_entity(CellId{0, 0}, Vec2{0.5, 0.1});
    std::uint64_t rounds = 0;
    while (sys.total_arrivals() < 1 && rounds < 5000) {
      sys.update();
      ++rounds;
    }
    ASSERT_EQ(sys.total_arrivals(), 1u);
    latencies.push_back(static_cast<double>(rounds));
  }
  EXPECT_LT(latencies[0], latencies[1]);
  EXPECT_LT(latencies[1], latencies[2]);
  EXPECT_LT(latencies[2], latencies[3]);
}

TEST(Progress, LowestIdChooseStillDeliversSingleStream) {
  // With a single stream of traffic there is no competition, so even the
  // unfair policy delivers (the unfairness needs ≥ 2 predecessors —
  // see test_fairness).
  SystemConfig cfg;
  cfg.side = 6;
  cfg.params = kP;
  cfg.sources = {CellId{1, 0}};
  cfg.target = CellId{1, 5};
  System sys(cfg, make_choose_policy("lowest-id", 0),
             std::make_unique<EntryEdgeSource>());
  testing::run_rounds(sys, 1500);
  EXPECT_GT(sys.total_arrivals(), 10u);
}

}  // namespace
}  // namespace cellflow
