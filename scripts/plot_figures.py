#!/usr/bin/env python3
"""Plot the reproduced figures from the benches' CSV output.

Usage:
    # 1. capture bench output
    ./build/bench/fig7_throughput_vs_rs   > results/fig7.txt
    ./build/bench/fig8_throughput_vs_turns > results/fig8.txt
    ./build/bench/fig9_throughput_vs_failures > results/fig9.txt
    # 2. plot (requires matplotlib)
    python3 scripts/plot_figures.py results/

Each bench prints an aligned table followed by a "CSV:" section; this
script extracts the CSV block and renders one PNG per figure next to the
input file, styled loosely after the paper's Figures 7-9.
"""

from __future__ import annotations

import csv
import io
import pathlib
import sys


def extract_csv(path: pathlib.Path) -> list[dict[str, str]]:
    """Return the rows of the CSV block embedded in a bench's output."""
    lines = path.read_text().splitlines()
    try:
        start = lines.index("CSV:") + 1
    except ValueError:
        raise SystemExit(f"{path}: no 'CSV:' block found")
    block: list[str] = []
    for line in lines[start:]:
        if not line or "," not in line:
            break
        block.append(line)
    reader = csv.DictReader(io.StringIO("\n".join(block)))
    return list(reader)


def series_by(rows, key_field, x_field, y_field):
    """Group rows into {series_key: ([x...], [y...])}."""
    out: dict[str, tuple[list[float], list[float]]] = {}
    for row in rows:
        key = row[key_field]
        xs, ys = out.setdefault(key, ([], []))
        xs.append(float(row[x_field]))
        ys.append(float(row[y_field]))
    return out


def plot(path: pathlib.Path, spec) -> None:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    rows = extract_csv(path)
    fig, ax = plt.subplots(figsize=(6, 4.2))
    for key, (xs, ys) in sorted(series_by(rows, *spec["group"]).items()):
        ax.plot(xs, ys, marker="o", label=f"{spec['legend']}={key}")
    ax.set_xlabel(spec["xlabel"])
    ax.set_ylabel("throughput (entities/round)")
    ax.set_title(spec["title"])
    ax.legend()
    ax.grid(True, alpha=0.3)
    out = path.with_suffix(".png")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


SPECS = {
    "fig7.txt": {
        "group": ("v", "rs", "throughput"),
        "legend": "v",
        "xlabel": "safety spacing rs",
        "title": "Fig. 7: throughput vs rs (8x8, l=0.25, K=2500)",
    },
    "fig8.txt": {
        "group": ("v", "turns", "throughput"),
        "legend": "v",
        "xlabel": "turns along length-8 path",
        "title": "Fig. 8: throughput vs path turns (rs=0.05, K=2500)",
    },
    "fig9.txt": {
        "group": ("pr", "pf", "throughput"),
        "legend": "pr",
        "xlabel": "failure probability pf",
        "title": "Fig. 9: throughput under fail/recover (K=20000)",
    },
}


def main() -> None:
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    results = pathlib.Path(sys.argv[1])
    plotted = 0
    for name, spec in SPECS.items():
        path = results / name
        if path.exists():
            plot(path, spec)
            plotted += 1
        else:
            print(f"skipping {path} (not found)")
    if plotted == 0:
        raise SystemExit("nothing to plot — run the benches first")


if __name__ == "__main__":
    main()
