#!/usr/bin/env sh
# Builds the test suite with ThreadSanitizer (CELLFLOW_TSAN=ON, see the
# `tsan` CMake preset) and runs the concurrency-sensitive subset: the
# ThreadPool unit tests, the serial-vs-parallel differential suites, the
# three-way equivalence tests, the observability layer (metrics registry
# under the parallel engine, profiler shard spans, concurrent logger
# writers), and the net-layer suites (SyncNetwork/FaultyNetwork units,
# the zero-fault NetDifferential pin, the fault-schedule property fuzz,
# and NetStabilization — single-threaded today, but kept in the lane so
# a future parallel MessageSystem inherits the race check), plus the
# active-set scheduler suites (ActiveSetDifferential runs the sharded
# engine over the stamp/occupancy arrays — the scheduler reads them
# inside worker threads and mutates them only at phase barriers, which
# is exactly the discipline TSan verifies) and the GrantReplay transport
# adversary, plus the snapshot/replay suites (the round-trip property
# tests restore into engines running the parallel policy at 2 and 4
# threads, so save/restore racing the pool would surface here). Any data
# race in the parallel round engine or the instrumentation aborts the
# run.
#
# Exits 0 with a notice when the toolchain cannot link -fsanitize=thread
# (some minimal images ship gcc without libtsan) so CI lanes without the
# runtime degrade gracefully instead of failing spuriously.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

probe_dir="$(mktemp -d)"
trap 'rm -rf "$probe_dir"' EXIT
cat > "$probe_dir/probe.cpp" <<'EOF'
#include <thread>
int main() {
  int x = 0;
  std::thread t([&] { x = 1; });
  t.join();
  return x - 1;
}
EOF
if ! c++ -fsanitize=thread -pthread "$probe_dir/probe.cpp" \
     -o "$probe_dir/probe" 2> "$probe_dir/probe.err"; then
  echo "run_tsan.sh: toolchain cannot link -fsanitize=thread; skipping." >&2
  sed 's/^/  /' "$probe_dir/probe.err" >&2 || true
  exit 0
fi

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
ctest --preset tsan
echo "run_tsan.sh: ThreadSanitizer suite clean."
