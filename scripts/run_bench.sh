#!/usr/bin/env sh
# Builds the default preset and runs every bench binary, steering each
# one's BENCH_<name>.json sidecar (bench/bench_common.hpp) into a single
# collection directory via CELLFLOW_BENCH_DIR — the recorder's output-dir
# override. The sidecars are the machine-readable record of a bench run
# (per-series CSV rows plus the run's table); scripts/plot_figures.py
# consumes the same CSV, and results/ keeps the latest committed run so
# EXPERIMENTS.md numbers stay reproducible.
#
# Usage: scripts/run_bench.sh [options] [out_dir]   (default: results/)
#        scripts/run_bench.sh --check [options] [out_dir]
#
# --check runs the suite into a scratch directory (default:
# build/bench_check) and gates the fresh sidecars against the committed
# baselines in results/ with tools/cellflow_bench_diff — exits nonzero
# on any noise-adjusted regression. Intended as the pre-commit /
# pre-merge performance gate. When the committed baselines were recorded
# on different hardware the gate refuses the comparison (bench_diff exit
# 3); --check maps that to exit 125 — ctest's SKIP_RETURN_CODE — so the
# benchcheck fixture skips instead of failing on foreign machines.
#
# --only=REGEX  run only benches whose basename matches (grep -E)
# --no-build    skip the configure+build step (caller guarantees
#               build/ is current — the ctest fixture, which must not
#               re-enter the build system it is running under)
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

check=0
only=""
build=1
while [ $# -gt 0 ]; do
  case "$1" in
    --check) check=1 ;;
    --only=*) only="${1#--only=}" ;;
    --no-build) build=0 ;;
    *) break ;;
  esac
  shift
done
if [ "$check" -eq 1 ]; then
  out_dir="${1:-build/bench_check}"
else
  out_dir="${1:-results}"
fi
mkdir -p "$out_dir"

if [ "$build" -eq 1 ]; then
  cmake --preset default > /dev/null
  cmake --build --preset default -j "$(nproc)" > /dev/null
fi

CELLFLOW_BENCH_DIR="$out_dir"
export CELLFLOW_BENCH_DIR
# Provenance stamp for the v2 sidecars (bench_common.hpp reads it).
if CELLFLOW_GIT_SHA="$(git rev-parse --short=12 HEAD 2>/dev/null)"; then
  export CELLFLOW_GIT_SHA
fi

status=0
for b in build/bench/*; do
  [ -x "$b" ] || continue
  [ -d "$b" ] && continue
  name="$(basename "$b")"
  if [ -n "$only" ] && ! echo "$name" | grep -Eq "$only"; then
    continue
  fi
  echo "== $name"
  if ! "$b"; then
    echo "run_bench.sh: $name FAILED" >&2
    status=1
  fi
  echo
done

echo "run_bench.sh: sidecars in $out_dir/"
ls "$out_dir"/BENCH_*.json

if [ "$check" -eq 1 ]; then
  echo
  echo "== bench_diff (baseline: results/)"
  diff_status=0
  build/tools/cellflow_bench_diff --baseline=results --fresh="$out_dir" ||
    diff_status=$?
  if [ "$diff_status" -eq 3 ]; then
    echo "run_bench.sh: baselines are from different hardware; skipping gate"
    exit 125
  fi
  [ "$diff_status" -eq 0 ] || status=1
fi
exit "$status"
