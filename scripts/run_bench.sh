#!/usr/bin/env sh
# Builds the default preset and runs every bench binary, steering each
# one's BENCH_<name>.json sidecar (bench/bench_common.hpp) into a single
# collection directory via CELLFLOW_BENCH_DIR — the recorder's output-dir
# override. The sidecars are the machine-readable record of a bench run
# (per-series CSV rows plus the run's table); scripts/plot_figures.py
# consumes the same CSV, and results/ keeps the latest committed run so
# EXPERIMENTS.md numbers stay reproducible.
#
# Usage: scripts/run_bench.sh [out_dir]        (default: results/)
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

out_dir="${1:-results}"
mkdir -p "$out_dir"

cmake --preset default > /dev/null
cmake --build --preset default -j "$(nproc)" > /dev/null

CELLFLOW_BENCH_DIR="$out_dir"
export CELLFLOW_BENCH_DIR

status=0
for b in build/bench/*; do
  [ -x "$b" ] || continue
  [ -d "$b" ] && continue
  name="$(basename "$b")"
  echo "== $name"
  if ! "$b"; then
    echo "run_bench.sh: $name FAILED" >&2
    status=1
  fi
  echo
done

echo "run_bench.sh: sidecars in $out_dir/"
ls "$out_dir"/BENCH_*.json
exit "$status"
