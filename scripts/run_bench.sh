#!/usr/bin/env sh
# Builds the default preset and runs every bench binary, steering each
# one's BENCH_<name>.json sidecar (bench/bench_common.hpp) into a single
# collection directory via CELLFLOW_BENCH_DIR — the recorder's output-dir
# override. The sidecars are the machine-readable record of a bench run
# (per-series CSV rows plus the run's table); scripts/plot_figures.py
# consumes the same CSV, and results/ keeps the latest committed run so
# EXPERIMENTS.md numbers stay reproducible.
#
# Usage: scripts/run_bench.sh [out_dir]        (default: results/)
#        scripts/run_bench.sh --check [out_dir]
#
# --check runs the suite into a scratch directory (default:
# build/bench_check) and gates the fresh sidecars against the committed
# baselines in results/ with tools/cellflow_bench_diff — exits nonzero
# on any noise-adjusted regression. Intended as the pre-commit /
# pre-merge performance gate.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

check=0
if [ "${1:-}" = "--check" ]; then
  check=1
  shift
fi
if [ "$check" -eq 1 ]; then
  out_dir="${1:-build/bench_check}"
else
  out_dir="${1:-results}"
fi
mkdir -p "$out_dir"

cmake --preset default > /dev/null
cmake --build --preset default -j "$(nproc)" > /dev/null

CELLFLOW_BENCH_DIR="$out_dir"
export CELLFLOW_BENCH_DIR
# Provenance stamp for the v2 sidecars (bench_common.hpp reads it).
if CELLFLOW_GIT_SHA="$(git rev-parse --short=12 HEAD 2>/dev/null)"; then
  export CELLFLOW_GIT_SHA
fi

status=0
for b in build/bench/*; do
  [ -x "$b" ] || continue
  [ -d "$b" ] && continue
  name="$(basename "$b")"
  echo "== $name"
  if ! "$b"; then
    echo "run_bench.sh: $name FAILED" >&2
    status=1
  fi
  echo
done

echo "run_bench.sh: sidecars in $out_dir/"
ls "$out_dir"/BENCH_*.json

if [ "$check" -eq 1 ]; then
  echo
  echo "== bench_diff (baseline: results/)"
  if ! build/tools/cellflow_bench_diff --baseline=results --fresh="$out_dir"; then
    status=1
  fi
fi
exit "$status"
